//! The deterministic instruction set of paper Table 1, plus the compute and
//! stream operations the evaluation workloads use.
//!
//! Every instruction has a statically known issue latency: "Execution
//! latency of all instructions is known statically (at compile time) and
//! therefore exposed to the compiler via the ISA" (paper §4). The
//! synchronization instructions (SYNC / NOTIFY / DESKEW / RUNTIME_DESKEW)
//! have *data-dependent* but *bounded and architecturally defined* stall
//! behaviour, modelled by `tsm-sync` and `tsm-chip`.

use crate::timing::HAC_PERIOD;
use crate::{Direction, StreamId};

/// The functional units ("slices") whose instruction-control units issue
/// instructions each cycle (paper §2, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FunctionalUnit {
    /// Matrix execution module: 320×320 int8 / 160×320 FP16 multiply array.
    Mxm,
    /// Vector execution module: pointwise ALUs.
    Vxm,
    /// Switch execution module: shifts, permutes, transpositions.
    Sxm,
    /// On-chip memory slices (88 slices of 2.5 MiB... modelled in `tsm-mem`).
    Mem,
    /// Chip-to-chip I/O module driving the 11 C2C links.
    C2c,
    /// Instruction control unit (fetch/dispatch; target of SYNC/NOTIFY).
    Icu,
}

impl FunctionalUnit {
    /// All functional units in issue order.
    pub const ALL: [FunctionalUnit; 6] = [
        FunctionalUnit::Mxm,
        FunctionalUnit::Vxm,
        FunctionalUnit::Sxm,
        FunctionalUnit::Mem,
        FunctionalUnit::C2c,
        FunctionalUnit::Icu,
    ];

    /// Dense index into per-unit tables, matching [`FunctionalUnit::ALL`]
    /// order.
    pub const fn index(self) -> usize {
        match self {
            FunctionalUnit::Mxm => 0,
            FunctionalUnit::Vxm => 1,
            FunctionalUnit::Sxm => 2,
            FunctionalUnit::Mem => 3,
            FunctionalUnit::C2c => 4,
            FunctionalUnit::Icu => 5,
        }
    }
}

/// One instruction of the scale-out TSP ISA.
///
/// The first seven variants are exactly paper Table 1; the rest are the
/// compute/stream operations the evaluation section exercises (§5.2–§5.5).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Instruction {
    // ---- Table 1: determinism support -------------------------------------
    /// Intra-chip pause: park this functional unit until a NOTIFY arrives.
    Sync,
    /// Intra-chip global signal restarting all parked functional units on
    /// the same (known-latency) cycle.
    Notify,
    /// Pause issue until the local HAC next overflows (epoch boundary).
    Deskew,
    /// Delay for `target_cycles` ± δt where δt = HAC − SAC, re-aligning
    /// local time with global time (paper §3.3).
    RuntimeDeskew {
        /// Nominal stall length in cycles; the actual stall absorbs drift.
        target_cycles: u64,
    },
    /// Send a notification vector to a child TSP over a C2C link.
    Transmit {
        /// Local C2C port the notification leaves on.
        port: u8,
    },
    /// Consume a vector from a C2C link into a stream.
    Receive {
        /// Local C2C port the vector arrives on.
        port: u8,
        /// Stream the payload is steered onto.
        stream: StreamId,
    },

    // ---- Data movement -----------------------------------------------------
    /// Send one vector from a stream out a C2C port (scheduled, not routed).
    Send {
        /// Local C2C port.
        port: u8,
        /// Source stream.
        stream: StreamId,
    },
    /// Read one vector from a memory slice onto a stream.
    Read {
        /// Memory slice index (0..88).
        slice: u8,
        /// Address offset within the slice.
        offset: u16,
        /// Destination stream.
        stream: StreamId,
        /// Direction the stream flows.
        dir: Direction,
    },
    /// Write one vector from a stream into a memory slice.
    Write {
        /// Memory slice index (0..88).
        slice: u8,
        /// Address offset within the slice.
        offset: u16,
        /// Source stream.
        stream: StreamId,
    },

    // ---- Compute -----------------------------------------------------------
    /// Load one weight row from a stream into the MXM array (K of these
    /// install a [K×320] tile; the functional model works at FP32-lane
    /// granularity, so up to 80 rows).
    InstallWeight {
        /// Stream carrying the weight row.
        stream: StreamId,
    },
    /// Multiply on the MXM: one [1×K]×[K×320] sub-op against the
    /// currently installed weights.
    MatMul {
        /// Stream feeding activations.
        input: StreamId,
        /// Stream receiving the result (flows inward).
        output: StreamId,
    },
    /// Pointwise vector ALU operation on the VXM.
    VectorOp {
        /// Opcode selector (add, mul, rsqrt-approx, …).
        op: VectorOpcode,
        /// Input streams.
        a: StreamId,
        /// Second operand (ignored by unary ops).
        b: StreamId,
        /// Destination stream.
        dest: StreamId,
    },
    /// Shift/permute/transpose on the SXM.
    Permute {
        /// Input stream.
        input: StreamId,
        /// Output stream.
        output: StreamId,
    },
    /// Issue nothing this cycle (explicit bubble; schedules are total).
    Nop,
}

/// Pointwise opcodes supported by the VXM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum VectorOpcode {
    /// Lane-wise addition.
    Add,
    /// Lane-wise subtraction.
    Sub,
    /// Lane-wise multiply.
    Mul,
    /// Reciprocal square root approximation (paper §5.5 Cholesky kernel).
    Rsqrt,
    /// Broadcast lane 0 across the vector ("splat", paper §5.5).
    Splat,
}

impl Instruction {
    /// The functional unit this instruction issues on.
    pub fn unit(&self) -> FunctionalUnit {
        match self {
            Instruction::Sync
            | Instruction::Notify
            | Instruction::Deskew
            | Instruction::RuntimeDeskew { .. }
            | Instruction::Nop => FunctionalUnit::Icu,
            Instruction::Transmit { .. }
            | Instruction::Receive { .. }
            | Instruction::Send { .. } => FunctionalUnit::C2c,
            Instruction::Read { .. } | Instruction::Write { .. } => FunctionalUnit::Mem,
            Instruction::InstallWeight { .. } | Instruction::MatMul { .. } => FunctionalUnit::Mxm,
            Instruction::VectorOp { .. } => FunctionalUnit::Vxm,
            Instruction::Permute { .. } => FunctionalUnit::Sxm,
        }
    }

    /// Fixed issue-to-retire latency in cycles for instructions whose cost
    /// is data-independent. Stalling instructions (SYNC, DESKEW,
    /// RUNTIME_DESKEW) return their *minimum* latency; their actual stall is
    /// bounded by [`Instruction::max_latency`].
    pub fn min_latency(&self) -> u64 {
        match self {
            Instruction::Sync => 1,
            Instruction::Notify => 8, // chip-wide control propagation, known latency
            Instruction::Deskew => 1,
            Instruction::RuntimeDeskew { target_cycles } => *target_cycles,
            Instruction::Transmit { .. } => 1,
            Instruction::Receive { .. } => 1,
            Instruction::Send { .. } => 1,
            Instruction::Read { .. } => 5,
            Instruction::Write { .. } => 5,
            Instruction::InstallWeight { .. } => 1, // one row per cycle
            Instruction::MatMul { .. } => 1,        // pipelined: 1 sub-op issue per cycle
            Instruction::VectorOp { .. } => 4,
            Instruction::Permute { .. } => 2,
            Instruction::Nop => 1,
        }
    }

    /// Upper bound on latency, used by the compiler's worst-case analysis.
    pub fn max_latency(&self) -> u64 {
        match self {
            // DESKEW waits at most one full epoch.
            Instruction::Deskew => HAC_PERIOD,
            // RUNTIME_DESKEW absorbs at most ±1 epoch of drift.
            Instruction::RuntimeDeskew { target_cycles } => target_cycles + HAC_PERIOD,
            // SYNC waits for a NOTIFY; bounded by the program, not the ISA.
            Instruction::Sync => u64::MAX,
            other => other.min_latency(),
        }
    }

    /// True for the synchronization instructions of paper Table 1.
    pub fn is_sync_support(&self) -> bool {
        matches!(
            self,
            Instruction::Sync
                | Instruction::Notify
                | Instruction::Deskew
                | Instruction::RuntimeDeskew { .. }
                | Instruction::Transmit { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u8) -> StreamId {
        StreamId::new(n).unwrap()
    }

    #[test]
    fn table1_instructions_issue_on_expected_units() {
        assert_eq!(Instruction::Sync.unit(), FunctionalUnit::Icu);
        assert_eq!(Instruction::Notify.unit(), FunctionalUnit::Icu);
        assert_eq!(Instruction::Deskew.unit(), FunctionalUnit::Icu);
        assert_eq!(
            Instruction::RuntimeDeskew { target_cycles: 10 }.unit(),
            FunctionalUnit::Icu
        );
        assert_eq!(
            Instruction::Transmit { port: 0 }.unit(),
            FunctionalUnit::C2c
        );
    }

    #[test]
    fn compute_instructions_route_to_slices() {
        assert_eq!(
            Instruction::MatMul {
                input: sid(0),
                output: sid(1)
            }
            .unit(),
            FunctionalUnit::Mxm
        );
        assert_eq!(
            Instruction::VectorOp {
                op: VectorOpcode::Add,
                a: sid(0),
                b: sid(1),
                dest: sid(2)
            }
            .unit(),
            FunctionalUnit::Vxm
        );
        assert_eq!(
            Instruction::Permute {
                input: sid(0),
                output: sid(1)
            }
            .unit(),
            FunctionalUnit::Sxm
        );
    }

    #[test]
    fn deskew_stall_bounded_by_epoch() {
        assert_eq!(Instruction::Deskew.max_latency(), HAC_PERIOD);
        assert!(Instruction::Deskew.min_latency() <= Instruction::Deskew.max_latency());
    }

    #[test]
    fn runtime_deskew_absorbs_at_most_one_epoch() {
        let i = Instruction::RuntimeDeskew {
            target_cycles: 1000,
        };
        assert_eq!(i.min_latency(), 1000);
        assert_eq!(i.max_latency(), 1000 + HAC_PERIOD);
    }

    #[test]
    fn sync_support_classification() {
        assert!(Instruction::Sync.is_sync_support());
        assert!(Instruction::Notify.is_sync_support());
        assert!(!Instruction::Nop.is_sync_support());
        assert!(!Instruction::Send {
            port: 0,
            stream: sid(0)
        }
        .is_sync_support());
    }

    #[test]
    fn fixed_latency_instructions_have_tight_bounds() {
        let i = Instruction::Read {
            slice: 0,
            offset: 0,
            stream: sid(0),
            dir: crate::Direction::East,
        };
        assert_eq!(i.min_latency(), i.max_latency());
    }
}
