//! Property-based tests for the ISA layer.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making these imports look unused; the real
// proptest uses all of them.
#![allow(unused_imports)]

use proptest::prelude::*;
use tsm_isa::packet::{payload_check_symbols, WirePacket, WIRE_BYTES};
use tsm_isa::vector::{vectors_for_bytes, Vector, VECTOR_BYTES};

proptest! {
    /// Encode/decode is the identity for every payload, sequence and tag.
    #[test]
    fn packet_roundtrips(seq: u16, tag: u8, payload in prop::collection::vec(any::<u8>(), VECTOR_BYTES)) {
        let v = Vector::from_slice(&payload).unwrap();
        let p = WirePacket { sequence: seq, tag, payload: v };
        let wire = p.encode();
        prop_assert_eq!(wire.len(), WIRE_BYTES);
        let q = WirePacket::decode(&wire).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Any single corrupted header byte is rejected.
    #[test]
    fn corrupt_header_detected(seq: u16, idx in 0usize..4, flip in 1u8..=255) {
        let p = WirePacket::data(seq, Vector::splat(7));
        let mut wire = p.encode();
        wire[idx] ^= flip;
        // Either the checksum catches it, or (if the flip hit only the
        // payload-check field bytes 4..8) decode still succeeds — idx<4
        // here so it must fail.
        prop_assert!(WirePacket::decode(&wire).is_err());
    }

    /// Any buffer of the wrong length is rejected.
    #[test]
    fn wrong_length_rejected(len in 0usize..1000) {
        prop_assume!(len != WIRE_BYTES);
        let buf = vec![0u8; len];
        prop_assert!(WirePacket::decode(&buf).is_err());
    }

    /// vectors_for_bytes is the exact ceiling division and monotone.
    #[test]
    fn vector_count_is_ceiling(bytes in 0u64..10_000_000) {
        let v = vectors_for_bytes(bytes);
        prop_assert!(v * 320 >= bytes);
        prop_assert!(v == 0 || (v - 1) * 320 < bytes);
        prop_assert!(vectors_for_bytes(bytes + 1) >= v);
    }

    /// A single flipped payload byte always flips exactly one check symbol.
    #[test]
    fn parity_localizes_byte_errors(
        payload in prop::collection::vec(any::<u8>(), VECTOR_BYTES),
        idx in 0usize..VECTOR_BYTES,
        flip in 1u8..=255,
    ) {
        let mut arr = [0u8; VECTOR_BYTES];
        arr.copy_from_slice(&payload);
        let clean = payload_check_symbols(&arr);
        arr[idx] ^= flip;
        let dirty = payload_check_symbols(&arr);
        let differing = clean.iter().zip(dirty.iter()).filter(|(a, b)| a != b).count();
        prop_assert_eq!(differing, 1);
    }

    /// Vector digests are stable and content-sensitive.
    #[test]
    fn digest_detects_any_byte_change(
        payload in prop::collection::vec(any::<u8>(), VECTOR_BYTES),
        idx in 0usize..VECTOR_BYTES,
        flip in 1u8..=255,
    ) {
        let a = Vector::from_slice(&payload).unwrap();
        let mut changed = payload.clone();
        changed[idx] ^= flip;
        let b = Vector::from_slice(&changed).unwrap();
        prop_assert_ne!(a.digest(), b.digest());
    }
}
