//! SECDED protection of memory words (paper §4.5: "single-error correction
//! and double-error detection (SECDED) extensively throughout the TSP's
//! memory system, data paths, and instruction buffers").
//!
//! The classic Hamming(71,64) + overall-parity construction: the 64 data
//! bits occupy the non-power-of-two positions of a 71-bit codeword and 7
//! check bits sit at positions 1, 2, 4, …, 64, so the syndrome of any
//! single flip names its position unambiguously — a power-of-two syndrome
//! is a check-bit flip (data intact), anything else maps back to a data
//! bit. The overall parity bit distinguishes odd (correctable) from even
//! (detect-only) flip counts.

/// Number of Hamming check bits.
#[allow(dead_code)] // documents the construction; asserted by tests
const CHECK_BITS: u32 = 7;

/// Codeword length excluding the overall parity bit.
const CODE_LEN: u8 = 71;

/// Position (1-based) of data bit `i` in the codeword: the `i`-th
/// non-power-of-two position.
fn data_position(i: u8) -> u8 {
    debug_assert!(i < 64);
    // Positions 1..=71, skipping 1,2,4,8,16,32,64.
    let mut pos = 0u8;
    let mut remaining = i as i16;
    loop {
        pos += 1;
        if pos.is_power_of_two() {
            continue;
        }
        if remaining == 0 {
            return pos;
        }
        remaining -= 1;
    }
}

/// Inverse of [`data_position`]: data index of codeword position `pos`,
/// or `None` for check-bit positions.
fn data_index(pos: u8) -> Option<u8> {
    if pos == 0 || pos > CODE_LEN || pos.is_power_of_two() {
        return None;
    }
    // count non-power-of-two positions below pos
    let mut idx = 0u8;
    for p in 1..pos {
        if !p.is_power_of_two() {
            idx += 1;
        }
    }
    Some(idx)
}

/// Syndrome over the data bits only (check bits at power positions are
/// folded in separately).
fn data_syndrome(data: u64) -> u8 {
    let mut s = 0u8;
    let mut d = data;
    while d != 0 {
        let bit = d.trailing_zeros() as u8;
        s ^= data_position(bit);
        d &= d - 1;
    }
    s
}

/// A 64-bit word with its 8 SECDED check bits, as stored in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectedWord {
    /// The stored data bits (possibly corrupted in flight).
    pub data: u64,
    /// Hamming check bits (low 7) plus overall parity (bit 7).
    pub check: u8,
}

/// Outcome of reading a protected word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// No error.
    Clean {
        /// The word.
        data: u64,
    },
    /// One bit was flipped and repaired.
    Corrected {
        /// The repaired word.
        data: u64,
        /// What was repaired.
        location: FlipLocation,
    },
    /// A double error: the word is unusable and the access must be
    /// escalated (software replay, paper §4.5).
    DoubleError,
}

/// Where a corrected single flip was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipLocation {
    /// A data bit (zero-based index).
    Data(u8),
    /// One of the 7 Hamming check bits.
    Check(u8),
    /// The overall parity bit.
    Parity,
}

impl ReadOutcome {
    /// The usable data, if any.
    pub fn data(self) -> Option<u64> {
        match self {
            ReadOutcome::Clean { data } | ReadOutcome::Corrected { data, .. } => Some(data),
            ReadOutcome::DoubleError => None,
        }
    }
}

/// Encodes a data word for storage.
pub fn encode(data: u64) -> ProtectedWord {
    let syndrome = data_syndrome(data);
    // Overall parity covers data and the 7 check bits.
    let parity = ((data.count_ones() + syndrome.count_ones()) & 1) as u8;
    ProtectedWord {
        data,
        check: syndrome | (parity << 7),
    }
}

/// Decodes a stored word, repairing a single flipped bit anywhere in the
/// 72 stored bits (data, check, or parity).
pub fn decode(stored: ProtectedWord) -> ReadOutcome {
    let stored_syndrome = stored.check & 0x7f;
    let stored_parity = stored.check >> 7;
    let expect_syndrome = data_syndrome(stored.data);
    let delta = stored_syndrome ^ expect_syndrome;
    // Parity check: the stored parity bit must equal the parity of the
    // stored data + stored check bits (as written by encode). A mismatch
    // means an odd number of flips.
    let total_parity =
        ((stored.data.count_ones() + stored_syndrome.count_ones()) & 1) as u8 == stored_parity;

    match (delta, total_parity) {
        (0, true) => ReadOutcome::Clean { data: stored.data },
        (0, false) => {
            // Only the parity bit flipped.
            ReadOutcome::Corrected {
                data: stored.data,
                location: FlipLocation::Parity,
            }
        }
        (d, false) => {
            if d.is_power_of_two() && (1..=64).contains(&d) {
                // A Hamming check bit flipped; data is intact.
                ReadOutcome::Corrected {
                    data: stored.data,
                    location: FlipLocation::Check(d.trailing_zeros() as u8),
                }
            } else if let Some(idx) = data_index(d) {
                if idx < 64 {
                    let data = stored.data ^ (1u64 << idx);
                    ReadOutcome::Corrected {
                        data,
                        location: FlipLocation::Data(idx),
                    }
                } else {
                    ReadOutcome::DoubleError
                }
            } else {
                ReadOutcome::DoubleError
            }
        }
        // Even flip count with a moved syndrome: double error.
        (_, true) => ReadOutcome::DoubleError,
    }
}

/// Storage overhead of the scheme: 8 check bits per 64 data bits.
pub fn overhead_fraction() -> f64 {
    8.0 / 64.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_bijective() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let pos = data_position(i);
            assert!(!pos.is_power_of_two());
            assert!(pos <= CODE_LEN);
            assert!(seen.insert(pos));
            assert_eq!(data_index(pos), Some(i));
        }
        assert_eq!(CHECK_BITS, 7);
    }

    #[test]
    fn clean_word_reads_clean() {
        for data in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            assert_eq!(decode(encode(data)), ReadOutcome::Clean { data });
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let stored = encode(data);
        for bit in 0..64u8 {
            let corrupted = ProtectedWord {
                data: stored.data ^ (1u64 << bit),
                check: stored.check,
            };
            let out = decode(corrupted);
            assert_eq!(
                out,
                ReadOutcome::Corrected {
                    data,
                    location: FlipLocation::Data(bit)
                },
                "bit {bit}"
            );
        }
    }

    #[test]
    fn check_and_parity_bit_flips_leave_data_intact() {
        let data = 0xFFFF_0000_FFFF_0000u64;
        let stored = encode(data);
        for bit in 0..8u8 {
            let corrupted = ProtectedWord {
                data: stored.data,
                check: stored.check ^ (1 << bit),
            };
            let out = decode(corrupted);
            assert_eq!(out.data(), Some(data), "check bit {bit}: {out:?}");
            assert!(matches!(out, ReadOutcome::Corrected { .. }));
        }
    }

    #[test]
    fn double_data_bit_flips_are_detected() {
        let data = 0xAAAA_5555_AAAA_5555u64;
        let stored = encode(data);
        for (a, b) in [(0u8, 1u8), (3, 62), (10, 40), (63, 0), (7, 8)] {
            if a == b {
                continue;
            }
            let corrupted = ProtectedWord {
                data: stored.data ^ (1u64 << a) ^ (1u64 << b),
                check: stored.check,
            };
            assert_eq!(decode(corrupted), ReadOutcome::DoubleError, "({a},{b})");
        }
    }

    #[test]
    fn data_plus_check_double_flip_detected() {
        let data = 0x1234_5678_9ABC_DEF0u64;
        let stored = encode(data);
        for (dbit, cbit) in [(0u8, 0u8), (17, 3), (63, 6)] {
            let corrupted = ProtectedWord {
                data: stored.data ^ (1u64 << dbit),
                check: stored.check ^ (1 << cbit),
            };
            // Must never silently return wrong data.
            match decode(corrupted) {
                ReadOutcome::DoubleError => {}
                ReadOutcome::Corrected { data: d, .. } | ReadOutcome::Clean { data: d } => {
                    assert_eq!(d, data, "miscorrection for ({dbit},{cbit})");
                }
            }
        }
    }

    #[test]
    fn overhead_is_12_5_percent() {
        assert_eq!(overhead_fraction(), 0.125);
    }
}
