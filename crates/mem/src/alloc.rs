//! Allocation of tensors in the distributed global SRAM.
//!
//! The compiler places every tensor at compile time — there is no dynamic
//! memory management at runtime (a prerequisite of the fully static
//! schedule). [`DeviceAllocator`] is a bump allocator over one device's
//! 720,896 vector slots; [`DistributedTensor`] spreads a large tensor
//! across a device set in contiguous per-device extents.

use crate::{GlobalAddress, MemError, VECTORS_PER_DEVICE};
use tsm_topology::TspId;

/// Bump allocator over one device's SRAM, at vector granularity.
#[derive(Debug, Clone)]
pub struct DeviceAllocator {
    device: TspId,
    next: u64,
}

impl DeviceAllocator {
    /// A fresh allocator with the device's full 220 MiB available.
    pub fn new(device: TspId) -> Self {
        DeviceAllocator { device, next: 0 }
    }

    /// The device this allocator manages.
    pub fn device(&self) -> TspId {
        self.device
    }

    /// Vector slots still available.
    pub fn available(&self) -> u64 {
        VECTORS_PER_DEVICE - self.next
    }

    /// Vector slots already allocated.
    pub fn used(&self) -> u64 {
        self.next
    }

    /// Allocates `vectors` contiguous slots, returning the base address.
    pub fn allocate(&mut self, vectors: u64) -> Result<GlobalAddress, MemError> {
        if vectors > self.available() {
            return Err(MemError::DeviceFull {
                device: self.device,
                requested: vectors,
                available: self.available(),
            });
        }
        let base = GlobalAddress::from_device_linear(self.device, self.next)
            .expect("next < VECTORS_PER_DEVICE");
        self.next += vectors;
        Ok(base)
    }

    /// Resets the allocator (program teardown between inferences).
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

/// Where one shard of a distributed tensor lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Owning device.
    pub device: TspId,
    /// Base address of this shard.
    pub base: GlobalAddress,
    /// Shard length in vectors.
    pub vectors: u64,
}

/// A tensor spread across several devices' SRAM in contiguous extents.
#[derive(Debug, Clone)]
pub struct DistributedTensor {
    /// Total size in vectors.
    pub total_vectors: u64,
    /// Per-device shards, in device order.
    pub placements: Vec<Placement>,
}

impl DistributedTensor {
    /// Allocates `total_vectors` evenly across `allocators` (the first
    /// `total mod n` devices receive one extra vector), mirroring the
    /// block distribution the compiler uses for weight splits (paper
    /// §5.2).
    pub fn allocate_even(
        allocators: &mut [&mut DeviceAllocator],
        total_vectors: u64,
    ) -> Result<Self, MemError> {
        if allocators.is_empty() {
            return Err(MemError::NoDevices);
        }
        let n = allocators.len() as u64;
        let base_share = total_vectors / n;
        let remainder = total_vectors % n;
        let mut placements = Vec::with_capacity(allocators.len());
        for (i, alloc) in allocators.iter_mut().enumerate() {
            let share = base_share + if (i as u64) < remainder { 1 } else { 0 };
            if share == 0 {
                continue;
            }
            let base = alloc.allocate(share)?;
            placements.push(Placement {
                device: alloc.device(),
                base,
                vectors: share,
            });
        }
        Ok(DistributedTensor {
            total_vectors,
            placements,
        })
    }

    /// The device owning global vector index `idx` of this tensor, with the
    /// within-shard offset.
    pub fn locate(&self, idx: u64) -> Option<(TspId, u64)> {
        let mut remaining = idx;
        for p in &self.placements {
            if remaining < p.vectors {
                return Some((p.device, remaining));
            }
            remaining -= p.vectors;
        }
        None
    }

    /// Number of devices actually holding data.
    pub fn device_count(&self) -> usize {
        self.placements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut a = DeviceAllocator::new(TspId(0));
        let x = a.allocate(10).unwrap();
        let y = a.allocate(5).unwrap();
        assert_eq!(x.device_linear(), 0);
        assert_eq!(y.device_linear(), 10);
        assert_eq!(a.used(), 15);
        assert_eq!(a.available(), VECTORS_PER_DEVICE - 15);
    }

    #[test]
    fn allocation_fails_when_full() {
        let mut a = DeviceAllocator::new(TspId(1));
        a.allocate(VECTORS_PER_DEVICE).unwrap();
        let err = a.allocate(1).unwrap_err();
        assert!(matches!(err, MemError::DeviceFull { available: 0, .. }));
    }

    #[test]
    fn reset_reclaims_everything() {
        let mut a = DeviceAllocator::new(TspId(0));
        a.allocate(100).unwrap();
        a.reset();
        assert_eq!(a.available(), VECTORS_PER_DEVICE);
    }

    #[test]
    fn even_distribution_with_remainder() {
        let mut a0 = DeviceAllocator::new(TspId(0));
        let mut a1 = DeviceAllocator::new(TspId(1));
        let mut a2 = DeviceAllocator::new(TspId(2));
        let t = DistributedTensor::allocate_even(&mut [&mut a0, &mut a1, &mut a2], 10).unwrap();
        let shares: Vec<u64> = t.placements.iter().map(|p| p.vectors).collect();
        assert_eq!(shares, vec![4, 3, 3]);
        assert_eq!(t.total_vectors, 10);
        assert_eq!(t.device_count(), 3);
    }

    #[test]
    fn locate_walks_shards() {
        let mut a0 = DeviceAllocator::new(TspId(0));
        let mut a1 = DeviceAllocator::new(TspId(1));
        let t = DistributedTensor::allocate_even(&mut [&mut a0, &mut a1], 7).unwrap();
        // shares: 4, 3
        assert_eq!(t.locate(0), Some((TspId(0), 0)));
        assert_eq!(t.locate(3), Some((TspId(0), 3)));
        assert_eq!(t.locate(4), Some((TspId(1), 0)));
        assert_eq!(t.locate(6), Some((TspId(1), 2)));
        assert_eq!(t.locate(7), None);
    }

    #[test]
    fn empty_device_set_rejected() {
        assert_eq!(
            DistributedTensor::allocate_even(&mut [], 5).unwrap_err(),
            MemError::NoDevices
        );
    }

    #[test]
    fn zero_sized_shards_are_skipped() {
        let mut a0 = DeviceAllocator::new(TspId(0));
        let mut a1 = DeviceAllocator::new(TspId(1));
        let mut a2 = DeviceAllocator::new(TspId(2));
        let t = DistributedTensor::allocate_even(&mut [&mut a0, &mut a1, &mut a2], 2).unwrap();
        assert_eq!(t.device_count(), 2);
    }

    #[test]
    fn oversized_distributed_tensor_fails() {
        let mut a0 = DeviceAllocator::new(TspId(0));
        let r = DistributedTensor::allocate_even(&mut [&mut a0], VECTORS_PER_DEVICE + 1);
        assert!(r.is_err());
    }
}
