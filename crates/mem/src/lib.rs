//! Global shared address space: logically shared, physically distributed
//! SRAM (paper §1, Fig 3).
//!
//! Each TSP contributes 220 MiB of on-chip SRAM. The system-wide memory is
//! addressed as a **rank-5 tensor** with shape
//! `[Device, Hemisphere, Slice, Bank, Offset] = [N, 2, 44, 2, 4096]`
//! (paper Fig 3), where each element is one 320-byte vector:
//!
//! ```text
//! 2 × 44 × 2 × 4096 vectors × 320 B = 230,686,720 B = 220 MiB per device
//! ```
//!
//! [`GlobalAddress`] provides the tensor addressing with validation and a
//! dense linearization; [`alloc`] provides the per-device and distributed
//! tensor allocators the compiler uses to place operands.

pub mod alloc;
pub mod secded;

pub use alloc::{DeviceAllocator, DistributedTensor, Placement};

use std::fmt;
use tsm_topology::TspId;

/// Hemispheres per device (the chip's two halves, east/west of the MXM).
pub const HEMISPHERES: u64 = 2;

/// Memory slices per hemisphere.
pub const SLICES: u64 = 44;

/// Banks per slice.
pub const BANKS: u64 = 2;

/// Vector-granularity addresses per bank.
pub const OFFSETS: u64 = 4096;

/// Addressable vectors per device (`2 × 44 × 2 × 4096`).
pub const VECTORS_PER_DEVICE: u64 = HEMISPHERES * SLICES * BANKS * OFFSETS;

/// Bytes per addressable vector.
pub const VECTOR_BYTES: u64 = 320;

/// SRAM bytes per device — exactly 220 MiB (paper abstract).
pub const BYTES_PER_DEVICE: u64 = VECTORS_PER_DEVICE * VECTOR_BYTES;

/// Errors from address construction and allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A coordinate exceeded its extent.
    OutOfRange {
        /// Which coordinate.
        dim: &'static str,
        /// Offending value.
        got: u64,
        /// Extent of that dimension.
        extent: u64,
    },
    /// A device's SRAM is exhausted.
    DeviceFull {
        /// The exhausted device.
        device: TspId,
        /// Vectors requested.
        requested: u64,
        /// Vectors remaining.
        available: u64,
    },
    /// A distributed allocation had no devices to place on.
    NoDevices,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { dim, got, extent } => {
                write!(f, "{dim} = {got} out of range (extent {extent})")
            }
            MemError::DeviceFull {
                device,
                requested,
                available,
            } => write!(
                f,
                "{device} SRAM full: requested {requested} vectors, {available} available"
            ),
            MemError::NoDevices => write!(f, "distributed allocation over an empty device set"),
        }
    }
}

impl std::error::Error for MemError {}

/// One vector-granularity address in the global shared address space —
/// the rank-5 tensor coordinate of paper Fig 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddress {
    /// Owning device.
    pub device: TspId,
    /// Hemisphere (0 or 1).
    pub hemisphere: u8,
    /// Memory slice within the hemisphere (0..44).
    pub slice: u8,
    /// Bank within the slice (0 or 1).
    pub bank: u8,
    /// Vector offset within the bank (0..4096).
    pub offset: u16,
}

impl GlobalAddress {
    /// Builds an address, validating every coordinate against the tensor
    /// shape `[N, 2, 44, 2, 4096]`.
    pub fn new(
        device: TspId,
        hemisphere: u8,
        slice: u8,
        bank: u8,
        offset: u16,
    ) -> Result<Self, MemError> {
        if hemisphere as u64 >= HEMISPHERES {
            return Err(MemError::OutOfRange {
                dim: "hemisphere",
                got: hemisphere as u64,
                extent: HEMISPHERES,
            });
        }
        if slice as u64 >= SLICES {
            return Err(MemError::OutOfRange {
                dim: "slice",
                got: slice as u64,
                extent: SLICES,
            });
        }
        if bank as u64 >= BANKS {
            return Err(MemError::OutOfRange {
                dim: "bank",
                got: bank as u64,
                extent: BANKS,
            });
        }
        if offset as u64 >= OFFSETS {
            return Err(MemError::OutOfRange {
                dim: "offset",
                got: offset as u64,
                extent: OFFSETS,
            });
        }
        Ok(GlobalAddress {
            device,
            hemisphere,
            slice,
            bank,
            offset,
        })
    }

    /// Linearizes the address within its device: a dense index in
    /// `[0, VECTORS_PER_DEVICE)`, row-major over
    /// (hemisphere, slice, bank, offset).
    pub fn device_linear(&self) -> u64 {
        ((self.hemisphere as u64 * SLICES + self.slice as u64) * BANKS + self.bank as u64) * OFFSETS
            + self.offset as u64
    }

    /// Linearizes across the whole system (device-major).
    pub fn system_linear(&self) -> u64 {
        self.device.0 as u64 * VECTORS_PER_DEVICE + self.device_linear()
    }

    /// Inverse of [`GlobalAddress::device_linear`] for a given device.
    pub fn from_device_linear(device: TspId, linear: u64) -> Result<Self, MemError> {
        if linear >= VECTORS_PER_DEVICE {
            return Err(MemError::OutOfRange {
                dim: "linear",
                got: linear,
                extent: VECTORS_PER_DEVICE,
            });
        }
        let offset = (linear % OFFSETS) as u16;
        let rest = linear / OFFSETS;
        let bank = (rest % BANKS) as u8;
        let rest = rest / BANKS;
        let slice = (rest % SLICES) as u8;
        let hemisphere = (rest / SLICES) as u8;
        Ok(GlobalAddress {
            device,
            hemisphere,
            slice,
            bank,
            offset,
        })
    }

    /// The memory-slice index in the chip's flat 0..88 numbering (both
    /// hemispheres), as used by MEM Read/Write instructions in `tsm-isa`.
    pub fn chip_slice(&self) -> u8 {
        self.hemisphere * SLICES as u8 + self.slice
    }
}

impl fmt::Display for GlobalAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, h{}, s{}, b{}, {:#06x}]",
            self.device, self.hemisphere, self.slice, self.bank, self.offset
        )
    }
}

/// Total global memory of an `n`-TSP system, in bytes (paper: 264 TSPs →
/// 56 GiB; 10,440 TSPs → 2.25 TB).
pub fn system_capacity_bytes(n_tsps: u64) -> u64 {
    n_tsps * BYTES_PER_DEVICE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_multiplies_to_220_mib() {
        assert_eq!(VECTORS_PER_DEVICE, 720_896);
        assert_eq!(BYTES_PER_DEVICE, 220 * 1024 * 1024);
    }

    #[test]
    fn system_capacities_match_paper() {
        assert_eq!(system_capacity_bytes(264) / (1024 * 1024 * 1024), 56);
        assert!(system_capacity_bytes(10_440) > 2_000_000_000_000);
    }

    #[test]
    fn address_validation() {
        assert!(GlobalAddress::new(TspId(0), 0, 0, 0, 0).is_ok());
        assert!(GlobalAddress::new(TspId(0), 1, 43, 1, 4095).is_ok());
        assert_eq!(
            GlobalAddress::new(TspId(0), 2, 0, 0, 0),
            Err(MemError::OutOfRange {
                dim: "hemisphere",
                got: 2,
                extent: 2
            })
        );
        assert!(GlobalAddress::new(TspId(0), 0, 44, 0, 0).is_err());
        assert!(GlobalAddress::new(TspId(0), 0, 0, 2, 0).is_err());
        assert!(GlobalAddress::new(TspId(0), 0, 0, 0, 4096).is_err());
    }

    #[test]
    fn linearization_roundtrips() {
        for linear in [0u64, 1, 4095, 4096, 8191, 8192, VECTORS_PER_DEVICE - 1] {
            let a = GlobalAddress::from_device_linear(TspId(3), linear).unwrap();
            assert_eq!(a.device_linear(), linear);
        }
        assert!(GlobalAddress::from_device_linear(TspId(0), VECTORS_PER_DEVICE).is_err());
    }

    #[test]
    fn linearization_is_dense_and_ordered() {
        let a = GlobalAddress::new(TspId(0), 0, 0, 0, 4095).unwrap();
        let b = GlobalAddress::new(TspId(0), 0, 0, 1, 0).unwrap();
        assert_eq!(a.device_linear() + 1, b.device_linear());
        let c = GlobalAddress::new(TspId(0), 0, 43, 1, 4095).unwrap();
        let d = GlobalAddress::new(TspId(0), 1, 0, 0, 0).unwrap();
        assert_eq!(c.device_linear() + 1, d.device_linear());
    }

    #[test]
    fn system_linear_is_device_major() {
        let last0 = GlobalAddress::new(TspId(0), 1, 43, 1, 4095).unwrap();
        let first1 = GlobalAddress::new(TspId(1), 0, 0, 0, 0).unwrap();
        assert_eq!(last0.system_linear() + 1, first1.system_linear());
    }

    #[test]
    fn chip_slice_spans_both_hemispheres() {
        assert_eq!(
            GlobalAddress::new(TspId(0), 0, 0, 0, 0)
                .unwrap()
                .chip_slice(),
            0
        );
        assert_eq!(
            GlobalAddress::new(TspId(0), 0, 43, 0, 0)
                .unwrap()
                .chip_slice(),
            43
        );
        assert_eq!(
            GlobalAddress::new(TspId(0), 1, 0, 0, 0)
                .unwrap()
                .chip_slice(),
            44
        );
        assert_eq!(
            GlobalAddress::new(TspId(0), 1, 43, 0, 0)
                .unwrap()
                .chip_slice(),
            87
        );
    }

    #[test]
    fn display_formats_coordinates() {
        let a = GlobalAddress::new(TspId(2), 1, 10, 0, 255).unwrap();
        let s = a.to_string();
        assert!(s.contains("tsp2") && s.contains("h1") && s.contains("s10"));
    }
}
