//! Property-based tests for the global address space and allocators.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making the imports below look unused; the real
// proptest uses all of them.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;
use tsm_mem::{DeviceAllocator, DistributedTensor, GlobalAddress, VECTORS_PER_DEVICE};
use tsm_topology::TspId;

proptest! {
    /// Device-linear addressing is a bijection on [0, VECTORS_PER_DEVICE).
    #[test]
    fn device_linear_bijection(linear in 0u64..VECTORS_PER_DEVICE) {
        let a = GlobalAddress::from_device_linear(TspId(3), linear).unwrap();
        prop_assert_eq!(a.device_linear(), linear);
        // coordinates in range
        prop_assert!(a.hemisphere < 2);
        prop_assert!(a.slice < 44);
        prop_assert!(a.bank < 2);
        prop_assert!(a.offset < 4096);
        prop_assert!(a.chip_slice() < 88);
    }

    /// Any valid coordinate tuple linearizes into range and roundtrips.
    #[test]
    fn coordinates_roundtrip(h in 0u8..2, s in 0u8..44, b in 0u8..2, o in 0u16..4096) {
        let a = GlobalAddress::new(TspId(0), h, s, b, o).unwrap();
        let lin = a.device_linear();
        prop_assert!(lin < VECTORS_PER_DEVICE);
        let back = GlobalAddress::from_device_linear(TspId(0), lin).unwrap();
        prop_assert_eq!(a, back);
    }

    /// Bump allocation never overlaps and never exceeds capacity.
    #[test]
    fn allocations_disjoint(sizes in prop::collection::vec(1u64..10_000, 1..50)) {
        let mut alloc = DeviceAllocator::new(TspId(0));
        let mut next_expected = 0;
        for &sz in &sizes {
            match alloc.allocate(sz) {
                Ok(base) => {
                    prop_assert_eq!(base.device_linear(), next_expected);
                    next_expected += sz;
                }
                Err(_) => {
                    prop_assert!(next_expected + sz > VECTORS_PER_DEVICE);
                    break;
                }
            }
        }
        prop_assert_eq!(alloc.used(), next_expected);
    }

    /// Even distribution conserves total vectors and locates every index.
    #[test]
    fn distributed_tensor_conserves(devices in 1usize..9, total in 0u64..100_000) {
        let mut allocs: Vec<DeviceAllocator> =
            (0..devices).map(|i| DeviceAllocator::new(TspId(i as u32))).collect();
        let mut refs: Vec<&mut DeviceAllocator> = allocs.iter_mut().collect();
        let t = DistributedTensor::allocate_even(&mut refs, total).unwrap();
        let sum: u64 = t.placements.iter().map(|p| p.vectors).sum();
        prop_assert_eq!(sum, total);
        // shares differ by at most one
        if t.placements.len() > 1 {
            let max = t.placements.iter().map(|p| p.vectors).max().unwrap();
            let min = t.placements.iter().map(|p| p.vectors).min().unwrap();
            prop_assert!(max - min <= 1);
        }
        // locate() covers exactly [0, total)
        if total > 0 {
            prop_assert!(t.locate(0).is_some());
            prop_assert!(t.locate(total - 1).is_some());
        }
        prop_assert!(t.locate(total).is_none());
    }
}
