//! The runtime orchestrator: marshal resources, align, execute, monitor,
//! and recover.
//!
//! Paper §5.1: "The runtime system then emplaces all program collateral on
//! the TSPs and synchronizes all programs … so that we launch the
//! inference simultaneously across all cooperating TSPs." Paper §4.5
//! supplies the recovery half: replay transient faults; on a persistent
//! fault, blame the marginal hardware, swap in the hot spare ("the runtime
//! layer marshals resources for invoking the parallel program's
//! execution"), recompile against the remapped devices, and replay.
//!
//! [`Runtime::launch`] is that loop, end to end. Programs are expressed
//! against *logical* devices; the runtime owns the logical→physical map.
//!
//! # Execution modes
//!
//! The health monitor can observe the links two ways ([`ExecMode`]):
//!
//! - **Statistical** (default): a per-packet FEC tally over the schedule's
//!   link reservations. Fast — no payload bytes move — and what the big
//!   benches use.
//! - **Datapath**: every transfer's payload vectors actually stream
//!   through the [`CompiledPlan`] engine, each inter-chip delivery
//!   crossing its link's BER channel. Single-bit flips are corrected in
//!   situ by the receiver FEC and the delivered bytes are verified
//!   bit-for-bit against the manifest; an uncorrectable error aborts the
//!   attempt as [`CosimError::Uncorrectable`](crate::cosim::CosimError::Uncorrectable)
//!   and drives the same
//!   replay/blame/failover machinery. Any launch that completes — after
//!   any number of replays and failovers — leaves destination SRAM
//!   bit-identical to a fault-free run, because corrupted attempts never
//!   contribute bytes and corrected ones are verified exact.

use crate::cosim::{compile_plan, CompiledPlan, TransferShape};
use crate::launch::LaunchEngine;
use crate::residency::ResidencyManager;
use crate::system::System;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tsm_chip::exec::Payload;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_compiler::schedule::CompiledProgram;
use tsm_fault::inject::FecStats;
use tsm_fault::spare::SparePlan;
use tsm_isa::vector::VECTOR_BYTES;
use tsm_isa::Vector;
use tsm_topology::{LinkId, NodeId, TspId};
use tsm_trace::telemetry::{Telemetry, TelemetryConfig};
use tsm_trace::{names, RunMetrics, TraceSink};

/// Which spare-provisioning policy the deployment uses (paper §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparePolicy {
    /// One spare node per rack (≈11 % overhead). On a topology smaller
    /// than one rack — where the policy would reserve zero spares — the
    /// runtime falls back to [`SparePolicy::PerSystem`] instead of
    /// constructing a plan with no redundancy.
    PerRack,
    /// One spare node per system (≈3 % overhead).
    PerSystem,
}

/// How [`Runtime::launch`] exercises the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Statistical per-packet FEC tally over the schedule's reservations
    /// (fast; no payload bytes move).
    #[default]
    Statistical,
    /// Real datapath: payload vectors stream through the compiled plan
    /// with per-link BER channels; corruption, correction and replay are
    /// exercised on actual bytes.
    Datapath,
}

/// Errors from the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Compilation of the (remapped) program failed.
    Compile(String),
    /// The fault persisted and no spare was left to absorb it.
    OutOfSpares {
        /// Nodes consumed before giving up.
        nodes_failed: usize,
    },
    /// A fault persisted but blame voting could not name a *replaceable*
    /// node: every culprit-link endpoint is a spare or otherwise unmapped.
    /// Distinct from [`RuntimeError::OutOfSpares`] — spares remain, and
    /// swapping one for a healthy node would not clear the fault, so the
    /// operator must inspect the named cables instead.
    BlameFailed {
        /// Spares still in reserve when blaming failed.
        spares_left: usize,
        /// The links the failed attempts implicated.
        culprits: Vec<LinkId>,
    },
    /// The datapath execution engine rejected the compiled plan for a
    /// reason that is not a link fault (a lowering bug, a capacity limit):
    /// replaying cannot help, so it surfaces directly.
    Execution(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Compile(e) => write!(f, "compile: {e}"),
            RuntimeError::OutOfSpares { nodes_failed } => {
                write!(
                    f,
                    "fault persisted after {nodes_failed} failovers; no spares left"
                )
            }
            RuntimeError::BlameFailed {
                spares_left,
                culprits,
            } => {
                write!(
                    f,
                    "fault persisted but no culprit node is replaceable ({} culprit links, {spares_left} spares idle)",
                    culprits.len()
                )
            }
            RuntimeError::Execution(e) => write!(f, "execution: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The record of one successful launch.
///
/// All tallies live in [`LaunchOutcome::metrics`] — one source of truth —
/// and the old standalone fields (`fec`, `fec_total`, `attempts`,
/// `compiles`, `reuses`) are views over it. `PartialEq` compares every
/// field, which is what the launch-vs-serve identity tests lean on.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchOutcome {
    /// The launch's full metrics snapshot: `runtime.*` counters
    /// (attempts/replays/compiles/reuses/blame votes/failovers),
    /// `link.fec.*` cells accumulated over every attempt (per-link in
    /// datapath mode), `launch.final.fec.*` for the successful run, and —
    /// in datapath mode — the co-simulation's `cosim.*` counters and
    /// retirement histogram.
    pub metrics: RunMetrics,
    /// Nodes failed over during this launch.
    pub failovers: Vec<NodeId>,
    /// One-time initial-alignment overhead paid before the first attempt,
    /// in cycles (paper §3.2).
    pub alignment_cycles: u64,
    /// The compiled span of the (final) program.
    pub span_cycles: u64,
    /// In [`ExecMode::Datapath`], the per-transfer destination-SRAM
    /// fingerprints of the successful run — bit-identical to a fault-free
    /// run of the same graph by the determinism guarantee. Empty in
    /// statistical mode.
    pub dst_digests: Vec<u64>,
    /// Virtual width of the whole launch on the trace timeline: the
    /// alignment window plus one `span+gap` window per attempt, measured
    /// from the launch's base cycle to its `LaunchEnd` event. The serving
    /// frontend uses this as the service time of a batch.
    pub timeline_cycles: u64,
    /// Windowed utilization heatmaps of this launch when telemetry is
    /// enabled ([`Runtime::set_telemetry`]): per-link delivery counts
    /// (`link.deliveries[linkN]`) and per-chip busy cycles
    /// (`chip.busy_cycles[chipN]`), sampled over every attempt — aborted
    /// ones included, exactly matching the trace. `None` when telemetry
    /// is off, so pre-feature outcomes compare bit-identically; present
    /// but empty in statistical mode, which moves no payloads.
    pub telemetry: Option<Telemetry>,
}

impl LaunchOutcome {
    /// Total executions (1 = clean first try).
    pub fn attempts(&self) -> u32 {
        self.metrics.counter(names::RT_ATTEMPTS) as u32
    }

    /// Replays consumed (attempts beyond each episode's first).
    pub fn replays(&self) -> u32 {
        self.metrics.counter(names::RT_REPLAYS) as u32
    }

    /// Compilations performed during this launch. A healthy relaunch of
    /// an unchanged graph compiles zero times; each failover forces
    /// exactly one recompile against the remapped devices.
    pub fn compiles(&self) -> u32 {
        self.metrics.counter(names::RT_COMPILES) as u32
    }

    /// Compile-cache hits during this launch.
    pub fn reuses(&self) -> u32 {
        self.metrics.counter(names::RT_REUSES) as u32
    }

    /// FEC tally of the successful execution.
    pub fn fec(&self) -> FecStats {
        FecStats {
            clean: self.metrics.counter(names::FINAL_CLEAN),
            corrected: self.metrics.counter(names::FINAL_CORRECTED),
            uncorrectable: self.metrics.counter(names::FINAL_UNCORRECTABLE),
        }
    }

    /// FEC tally accumulated over *every* attempt of this launch,
    /// including aborted ones — what the health monitor actually saw.
    pub fn fec_total(&self) -> FecStats {
        FecStats::from_metrics(&self.metrics)
    }
}

/// The datapath artifacts compiled alongside the program: the transfer
/// plan and the synthetic payload vectors bound to it on every attempt.
/// Payload bytes are a pure function of (transfer index, vector index), so
/// fault-free and faulty launches move identical data — the basis of the
/// bit-identical guarantee.
#[derive(Debug)]
pub(crate) struct DatapathArtifact {
    pub(crate) plan: CompiledPlan,
    pub(crate) payloads: Vec<Vec<Payload>>,
}

/// The compiled artifact of one logical graph against one
/// logical→physical mapping, kept resident across launches so an
/// unchanged program relaunches without recompiling (the paper's
/// deployments run one compiled schedule thousands of times, §5). One
/// entry of the [`ResidencyManager`]'s bounded cache.
#[derive(Debug)]
pub(crate) struct CompiledCache {
    /// Fingerprint of the logical graph the program was compiled from.
    pub(crate) graph_fp: u64,
    /// Mapping epoch the compile was valid for.
    pub(crate) epoch: u64,
    /// The compiled program.
    pub(crate) program: CompiledProgram,
    /// Present when the cache was filled in [`ExecMode::Datapath`].
    pub(crate) datapath: Option<DatapathArtifact>,
}

/// The runtime: a system plus its spare plan, health state, and the
/// physical-fault model the health monitor observes.
#[derive(Debug)]
pub struct Runtime {
    pub(crate) system: System,
    pub(crate) plan: SparePlan,
    /// Links with a degraded BER (marginal cables, paper §4.5). Injected
    /// by tests/operators; discovered by the health monitor at runtime.
    pub(crate) marginal_links: HashSet<LinkId>,
    /// BER of healthy links.
    pub(crate) base_ber: f64,
    /// BER of marginal links.
    pub(crate) marginal_ber: f64,
    /// Replays to attempt before declaring a fault persistent.
    pub(crate) max_replays: u32,
    /// How launches exercise the fabric.
    pub(crate) mode: ExecMode,
    /// Bumped every time a failover changes the logical→physical mapping;
    /// invalidates [`CompiledCache`] entries from earlier epochs.
    pub(crate) mapping_epoch: u64,
    /// Compiled plans resident across launches, keyed by
    /// `(graph fingerprint, mapping epoch)` under a configurable byte
    /// budget — multi-model streams reuse instead of thrashing.
    pub(crate) residency: ResidencyManager,
    /// The payload-binding executor (datapath mode); chip simulators are
    /// reset, not rebuilt, across attempts and launches.
    pub(crate) executor: crate::cosim::PlanExecutor,
    /// Where launch-lifecycle trace events go. Shared with the executor so
    /// one faulty launch renders as a single timeline: runtime lane events
    /// (compile, replay epochs, blame, failover) interleaved with the
    /// per-chip spans and link flips of each attempt.
    pub(crate) sink: Option<Arc<dyn TraceSink>>,
}

impl Runtime {
    /// Wraps a system with a spare plan.
    pub fn new(system: System, policy: SparePolicy) -> Self {
        let plan = match policy {
            SparePolicy::PerRack => SparePlan::per_rack(system.topology())
                .unwrap_or_else(|_| SparePlan::per_system(system.topology())),
            SparePolicy::PerSystem => SparePlan::per_system(system.topology()),
        };
        Runtime {
            system,
            plan,
            marginal_links: HashSet::new(),
            base_ber: 1e-9,
            marginal_ber: 1e-4,
            max_replays: 2,
            mode: ExecMode::default(),
            mapping_epoch: 0,
            residency: ResidencyManager::new(),
            executor: crate::cosim::PlanExecutor::new(),
            sink: None,
        }
    }

    /// Routes trace events from subsequent launches into `sink` (builder
    /// style).
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.set_trace_sink(sink);
        self
    }

    /// Routes trace events from subsequent launches into `sink`: the
    /// runtime's own lifecycle events plus, in datapath mode, the
    /// executor's per-chip and per-link events of every attempt.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.executor.set_trace_sink(Arc::clone(&sink));
        self.sink = Some(sink);
    }

    /// Detaches the trace sink (tracing back to zero-cost disabled).
    pub fn clear_trace_sink(&mut self) {
        self.sink = None;
        self.executor.clear_trace_sink();
    }

    /// Enables windowed telemetry sampling for subsequent launches
    /// (builder style). See [`Runtime::set_telemetry`].
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.set_telemetry(cfg);
        self
    }

    /// Enables windowed telemetry for subsequent launches: the executor
    /// samples per-link delivery counts and per-chip busy cycles onto
    /// `cfg.window`-cycle windows, and each [`LaunchOutcome`] carries the
    /// resulting [`Telemetry`]. Sampling is observation-only — event
    /// sequences and every other outcome field are bit-identical with
    /// telemetry on or off.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.executor.set_telemetry(cfg);
    }

    /// Disables telemetry sampling (back to the pre-feature single
    /// branch; subsequent outcomes carry `telemetry: None`).
    pub fn clear_telemetry(&mut self) {
        self.executor.clear_telemetry();
    }

    /// The telemetry configuration in effect, if any.
    pub fn telemetry_cfg(&self) -> Option<TelemetryConfig> {
        self.executor.telemetry_cfg()
    }

    /// Selects the execution mode for subsequent launches (builder style).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.set_exec_mode(mode);
        self
    }

    /// Selects the execution mode for subsequent launches.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The execution mode in use.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Overrides the healthy/marginal bit error rates.
    pub fn set_ber(&mut self, base: f64, marginal: f64) {
        self.base_ber = base;
        self.marginal_ber = marginal;
    }

    /// Overrides the replay budget.
    pub fn set_max_replays(&mut self, max_replays: u32) {
        self.max_replays = max_replays;
    }

    /// Marks a physical cable as marginal (the fault the health monitor
    /// will eventually blame and route out).
    pub fn degrade_link(&mut self, link: LinkId) {
        self.marginal_links.insert(link);
    }

    /// Logical devices available to programs.
    pub fn logical_tsps(&self) -> usize {
        self.plan.logical_nodes() * tsm_topology::TSPS_PER_NODE
    }

    /// The current logical→physical device map.
    pub fn physical_tsp(&self, logical: TspId) -> TspId {
        self.plan.physical_tsp(logical)
    }

    /// The spare plan (inspection).
    pub fn spare_plan(&self) -> &SparePlan {
        &self.plan
    }

    /// The underlying system (inspection — e.g. to enumerate physical
    /// links when marking cables marginal).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Caps the estimated bytes the residency layer may keep across
    /// compiled plans (builder style). `u64::MAX` (the default) is
    /// unbounded; `0` keeps only the most recently used plan — the
    /// pre-residency single-entry behavior.
    pub fn with_plan_budget(mut self, budget_bytes: u64) -> Self {
        self.set_plan_budget(budget_bytes);
        self
    }

    /// Caps the residency byte budget, evicting down to it immediately.
    pub fn set_plan_budget(&mut self, budget_bytes: u64) {
        self.residency.set_budget_bytes(budget_bytes);
    }

    /// The residency layer (inspection: resident set, counters, warm
    /// tier export).
    pub fn residency(&self) -> &ResidencyManager {
        &self.residency
    }

    /// The residency layer, mutably (warm-tier import, budget changes).
    pub fn residency_mut(&mut self) -> &mut ResidencyManager {
        &mut self.residency
    }

    /// The per-hop delivery schedule of the current launch's datapath
    /// plan (the residency entry the most recent launch executed from),
    /// in profiler coordinates — the compile-time half of the
    /// plan-vs-actual join performed by [`tsm_trace::profile`].
    ///
    /// `None` until a datapath launch has compiled (statistical mode
    /// carries no delivery manifest). Reflects the *current* topology, so
    /// call it after the launch whose trace you intend to profile.
    pub fn planned_timeline(&self) -> Option<tsm_trace::profile::PlannedTimeline> {
        self.residency
            .current()
            .and_then(|c| c.datapath.as_ref())
            .map(|a| a.plan.planned_timeline(self.system.topology()))
    }

    /// Launches a logical-device program: align, compile against the
    /// current mapping, execute with health monitoring, and recover from
    /// faults by replay and failover.
    ///
    /// Since the staged-pipeline refactor this is a thin compatibility
    /// wrapper over [`LaunchEngine`] — admission → mapping/alignment →
    /// compile-or-reuse → execute → recover, each stage a separately
    /// callable (and separately tested) method. Outcomes are bit-identical
    /// to the pre-refactor monolith.
    pub fn launch(&mut self, logical: &Graph, seed: u64) -> Result<LaunchOutcome, RuntimeError> {
        self.launch_at(logical, seed, 0)
    }

    /// [`Runtime::launch`] with the launch's trace timeline based at cycle
    /// `base` instead of 0. The serving frontend uses this to place each
    /// batch's launch at its dispatch cycle, so a whole serving run renders
    /// as one coherent timeline; with `base == 0` it is exactly `launch`.
    pub fn launch_at(
        &mut self,
        logical: &Graph,
        seed: u64,
        base: u64,
    ) -> Result<LaunchOutcome, RuntimeError> {
        LaunchEngine::new(self, logical, seed).with_base(base).run()
    }

    /// The number of times a failover has changed the logical→physical
    /// mapping over this runtime's lifetime.
    pub fn mapping_epoch(&self) -> u64 {
        self.mapping_epoch
    }

    /// Rewrites a logical-device graph onto the current physical mapping.
    pub(crate) fn remap(&self, logical: &Graph) -> Graph {
        let mut g = Graph::new();
        for node in logical.nodes() {
            let device = self.plan.physical_tsp(node.device);
            let kind = match &node.kind {
                OpKind::Transfer {
                    to,
                    bytes,
                    allow_nonminimal,
                } => OpKind::Transfer {
                    to: self.plan.physical_tsp(*to),
                    bytes: *bytes,
                    allow_nonminimal: *allow_nonminimal,
                },
                other => other.clone(),
            };
            g.add(device, kind, node.deps.clone())
                .expect("logical graph was valid");
        }
        g
    }

    /// Lowers the physical graph's transfers into a [`CompiledPlan`] plus
    /// the synthetic payloads every attempt binds to it, adopting a plan
    /// from the residency layer's warm-start tier when one matches the
    /// lowered shapes (plan compilation is deterministic, so the adopted
    /// plan is bit-identical to what a fresh compile would produce).
    ///
    /// Source vectors live on slice [`DATAPATH_SRC_SLICE`], delivered ones
    /// on [`DATAPATH_DST_SLICE`]; offsets are bump-allocated per chip so
    /// concurrent transfers never overlap. Payload bytes depend only on
    /// the transfer and vector indices — not on the seed, the attempt, or
    /// the mapping — so every run of the same logical graph moves the
    /// same bits, which is what makes "bit-identical to a fault-free run"
    /// a checkable property rather than a tautology.
    pub(crate) fn compile_datapath(
        &mut self,
        graph_fp: u64,
        physical: &Graph,
    ) -> Result<DatapathArtifact, RuntimeError> {
        let shapes = datapath_shapes(physical)?;
        let plan = match self
            .residency
            .take_warm(graph_fp, self.mapping_epoch, &shapes)
        {
            Some(plan) => plan,
            None => compile_plan(self.system.topology(), &shapes)
                .map_err(|e| RuntimeError::Execution(e.to_string()))?,
        };
        let payloads = shapes
            .iter()
            .enumerate()
            .map(|(t, s)| {
                (0..s.vectors)
                    .map(|v| Arc::new(synthetic_vector(t as u32, v)))
                    .collect()
            })
            .collect();
        Ok(DatapathArtifact { plan, payloads })
    }
}

/// Lowers a physical graph's cross-chip transfers into [`TransferShape`]s
/// with bump-allocated SRAM offsets (see
/// [`Runtime::compile_datapath`]).
fn datapath_shapes(physical: &Graph) -> Result<Vec<TransferShape>, RuntimeError> {
    let mut shapes: Vec<TransferShape> = Vec::new();
    let mut src_next: HashMap<TspId, u32> = HashMap::new();
    let mut dst_next: HashMap<TspId, u32> = HashMap::new();
    for node in physical.nodes() {
        if let OpKind::Transfer { to, bytes, .. } = node.kind {
            if to == node.device {
                // A local SRAM move never crosses the network.
                continue;
            }
            let vectors = bytes.div_ceil(VECTOR_BYTES as u64).max(1);
            let vectors = u32::try_from(vectors)
                .map_err(|_| RuntimeError::Execution("transfer too large".into()))?;
            let src = src_next.entry(node.device).or_insert(0);
            let dst = dst_next.entry(to).or_insert(0);
            let (src_offset, dst_offset) = (*src, *dst);
            if src_offset + vectors > u16::MAX as u32 + 1
                || dst_offset + vectors > u16::MAX as u32 + 1
            {
                return Err(RuntimeError::Execution(
                    "datapath payloads exceed SRAM slice capacity".into(),
                ));
            }
            *src += vectors;
            *dst += vectors;
            shapes.push(TransferShape {
                from: node.device,
                to,
                src_slice: DATAPATH_SRC_SLICE,
                src_offset: src_offset as u16,
                dst_slice: DATAPATH_DST_SLICE,
                dst_offset: dst_offset as u16,
                vectors,
            });
        }
    }
    Ok(shapes)
}

/// Trace-timeline gap rendered between consecutive attempt windows so
/// adjacent replay epochs don't visually abut in Perfetto. Purely
/// presentational: no simulated quantity depends on it.
pub(crate) const EPOCH_GAP_CYCLES: u64 = 64;

/// SRAM slice holding datapath source vectors.
const DATAPATH_SRC_SLICE: u8 = 0;
/// SRAM slice receiving datapath delivered vectors.
const DATAPATH_DST_SLICE: u8 = 1;

/// The deterministic payload for vector `v` of transfer `t`.
fn synthetic_vector(t: u32, v: u32) -> Vector {
    Vector::from_fn(|b| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [t as u64, v as u64, b as u64] {
            h = (h ^ w).wrapping_mul(0x100_0000_01b3);
        }
        (h >> 32) as u8
    })
}

/// Word-combining mix for deriving per-attempt fault seeds.
pub(crate) fn mix64(a: u64, b: u64) -> u64 {
    (0xcbf2_9ce4_8422_2325u64 ^ a)
        .wrapping_mul(0x100_0000_01b3)
        .wrapping_add(b)
        .wrapping_mul(0x100_0000_01b3)
}

/// Deterministic structural fingerprint of a logical graph.
///
/// Every node field is folded in as a separate word with the FNV-1a
/// pattern (`Vector::digest` uses the same constants), with a tag word
/// per op kind and an explicit dependency count. The previous
/// implementation hashed `format!("{node:?}")`, which had no field
/// separators inside a node — adjacent integer fields could collide
/// (`cycles: 12, …1` vs `cycles: 1, …21` shapes) — and silently changed
/// meaning whenever any `Debug` impl changed, aliasing or invalidating
/// compile caches across builds.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let word = |h: &mut u64, w: u64| *h = (*h ^ w).wrapping_mul(PRIME);
    for node in g.nodes() {
        word(&mut h, node.device.0 as u64);
        match &node.kind {
            OpKind::Gemm { shape, ty } => {
                word(&mut h, 1);
                word(&mut h, shape.m);
                word(&mut h, shape.n);
                word(&mut h, shape.l);
                word(&mut h, *ty as u64);
            }
            OpKind::Compute { cycles } => {
                word(&mut h, 2);
                word(&mut h, *cycles);
            }
            OpKind::Transfer {
                to,
                bytes,
                allow_nonminimal,
            } => {
                word(&mut h, 3);
                word(&mut h, to.0 as u64);
                word(&mut h, *bytes);
                word(&mut h, *allow_nonminimal as u64);
            }
            OpKind::HostInput { bytes } => {
                word(&mut h, 4);
                word(&mut h, *bytes);
            }
            OpKind::HostOutput { bytes } => {
                word(&mut h, 5);
                word(&mut h, *bytes);
            }
        }
        word(&mut h, node.deps.len() as u64);
        for d in &node.deps {
            word(&mut h, d.0 as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A logical pipeline spanning the first two logical nodes.
    fn logical_pipeline() -> Graph {
        let mut g = Graph::new();
        let a = g
            .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
            .unwrap();
        let t = g
            .add(
                TspId(0),
                OpKind::Transfer {
                    to: TspId(8),
                    bytes: 640_000,
                    allow_nonminimal: true,
                },
                vec![a],
            )
            .unwrap();
        g.add(TspId(8), OpKind::Compute { cycles: 10_000 }, vec![t])
            .unwrap();
        g
    }

    fn runtime() -> Runtime {
        Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
    }

    #[test]
    fn healthy_launch_is_one_attempt() {
        let mut rt = runtime();
        let out = rt.launch(&logical_pipeline(), 1).unwrap();
        assert_eq!(out.attempts(), 1);
        assert!(out.failovers.is_empty());
        assert!(out.alignment_cycles > 0);
        assert!(out.fec().is_clean_run());
        // a cold launch performs exactly one compile
        assert_eq!((out.compiles(), out.reuses()), (1, 0));
    }

    /// Compile-once / execute-many at the launch level: relaunching an
    /// unchanged graph on an unchanged mapping performs zero compiles.
    #[test]
    fn relaunching_unchanged_graph_reuses_compiled_program() {
        let mut rt = runtime();
        let g = logical_pipeline();
        let cold = rt.launch(&g, 1).unwrap();
        assert_eq!((cold.compiles(), cold.reuses()), (1, 0));
        for seed in 2..6 {
            let warm = rt.launch(&g, seed).unwrap();
            assert_eq!((warm.compiles(), warm.reuses()), (0, 1), "seed {seed}");
            assert_eq!(warm.span_cycles, cold.span_cycles);
        }
        // a different graph misses the cache
        let mut other = Graph::new();
        other
            .add(TspId(0), OpKind::Compute { cycles: 5_000 }, vec![])
            .unwrap();
        let out = rt.launch(&other, 7).unwrap();
        assert_eq!((out.compiles(), out.reuses()), (1, 0));
    }

    #[test]
    fn marginal_cable_triggers_failover_and_recovery() {
        let mut rt = runtime();
        // Degrade every cable touching logical node 1's physical node: the
        // transfer to TSP 8 will keep hitting uncorrectable errors until
        // the runtime blames node 1 and remaps it onto the spare.
        let victim = NodeId(1);
        let bad_links: Vec<LinkId> = rt
            .system
            .topology()
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        for l in bad_links {
            rt.degrade_link(l);
        }
        let out = rt.launch(&logical_pipeline(), 2).unwrap();
        assert_eq!(out.failovers, vec![victim]);
        assert!(out.attempts() > 1, "must have replayed before failing over");
        // logical TSP 8 now lives on the spare node
        assert_eq!(rt.physical_tsp(TspId(8)).node(), NodeId(3));
        assert!(out.fec().is_clean_run());
        // the health monitor saw the uncorrectable packets of the aborted
        // attempts even though the final run was clean
        assert!(out.fec_total().uncorrectable > 0);
        // each failover forces exactly one recompile against the new map
        assert_eq!(out.compiles(), out.failovers.len() as u32 + 1);
        assert_eq!(rt.mapping_epoch(), 1);
        // and the post-failover compile is itself cached for relaunch
        let warm = rt.launch(&logical_pipeline(), 4).unwrap();
        assert_eq!((warm.compiles(), warm.reuses()), (0, 1));
    }

    #[test]
    fn unrecoverable_fault_reports_out_of_spares() {
        let mut rt = runtime();
        // Degrade everything: no failover can escape.
        let all: Vec<LinkId> = (0..rt.system.topology().links().len())
            .map(|i| LinkId(i as u32))
            .collect();
        for l in all {
            rt.degrade_link(l);
        }
        let err = rt.launch(&logical_pipeline(), 3).unwrap_err();
        assert!(matches!(err, RuntimeError::OutOfSpares { .. }));
    }

    #[test]
    fn launches_are_seed_deterministic() {
        let run = |seed| {
            let mut rt = runtime();
            let out = rt.launch(&logical_pipeline(), seed).unwrap();
            (out.attempts(), out.span_cycles)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn logical_capacity_excludes_spares() {
        let rt = runtime();
        assert_eq!(rt.logical_tsps(), 24); // 3 logical nodes of 4 physical
    }

    /// The per-rack policy on a sub-rack topology falls back to the
    /// per-system plan instead of silently reserving zero spares.
    #[test]
    fn per_rack_on_small_topology_falls_back_to_per_system() {
        let rt = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerRack);
        assert_eq!(rt.spare_plan().spares_left(), 1);
        assert_eq!(rt.logical_tsps(), 24);
    }

    /// Datapath mode on a healthy fabric: real payloads stream through the
    /// compiled plan, every packet tallies clean, and the destination
    /// digests are recorded.
    #[test]
    fn datapath_launch_on_healthy_fabric_is_clean() {
        let mut rt = runtime().with_exec_mode(ExecMode::Datapath);
        rt.set_ber(0.0, 0.0);
        let out = rt.launch(&logical_pipeline(), 1).unwrap();
        assert_eq!(out.attempts(), 1);
        assert!(out.fec().is_clean_run());
        assert!(out.fec().clean > 0, "packets actually moved");
        assert_eq!(out.dst_digests.len(), 1);
        // relaunching reuses both the program and the datapath plan
        let warm = rt.launch(&logical_pipeline(), 2).unwrap();
        assert_eq!((warm.compiles(), warm.reuses()), (0, 1));
        assert_eq!(warm.dst_digests, out.dst_digests);
    }

    #[test]
    fn structural_fingerprint_separates_adjacent_fields() {
        // Same Debug-string "digit stream" shifted across field
        // boundaries: the structural hash must separate them.
        let mut a = Graph::new();
        a.add(TspId(0), OpKind::Compute { cycles: 12 }, vec![])
            .unwrap();
        a.add(TspId(0), OpKind::Compute { cycles: 1 }, vec![])
            .unwrap();
        let mut b = Graph::new();
        b.add(TspId(0), OpKind::Compute { cycles: 1 }, vec![])
            .unwrap();
        b.add(TspId(0), OpKind::Compute { cycles: 21 }, vec![])
            .unwrap();
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
    }

    #[test]
    fn structural_fingerprint_is_sensitive_to_every_field() {
        let base = || {
            let mut g = Graph::new();
            let a = g
                .add(TspId(0), OpKind::Compute { cycles: 100 }, vec![])
                .unwrap();
            g.add(
                TspId(1),
                OpKind::Transfer {
                    to: TspId(2),
                    bytes: 320,
                    allow_nonminimal: false,
                },
                vec![a],
            )
            .unwrap();
            g
        };
        let fp = graph_fingerprint(&base());

        let mut g = base();
        g.add(TspId(0), OpKind::HostInput { bytes: 320 }, vec![])
            .unwrap();
        assert_ne!(graph_fingerprint(&g), fp, "extra node");

        let mut g = Graph::new();
        let a = g
            .add(TspId(0), OpKind::Compute { cycles: 100 }, vec![])
            .unwrap();
        g.add(
            TspId(1),
            OpKind::Transfer {
                to: TspId(2),
                bytes: 320,
                allow_nonminimal: true, // flipped
            },
            vec![a],
        )
        .unwrap();
        assert_ne!(graph_fingerprint(&g), fp, "flag flip");

        let mut g = Graph::new();
        let a = g
            .add(TspId(0), OpKind::Compute { cycles: 100 }, vec![])
            .unwrap();
        g.add(
            TspId(1),
            OpKind::Transfer {
                to: TspId(3), // different destination
                bytes: 320,
                allow_nonminimal: false,
            },
            vec![a],
        )
        .unwrap();
        assert_ne!(graph_fingerprint(&g), fp, "destination");

        // and it is stable for identical graphs
        assert_eq!(graph_fingerprint(&base()), fp);
    }
}
