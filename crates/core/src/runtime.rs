//! The runtime orchestrator: marshal resources, align, execute, monitor,
//! and recover.
//!
//! Paper §5.1: "The runtime system then emplaces all program collateral on
//! the TSPs and synchronizes all programs … so that we launch the
//! inference simultaneously across all cooperating TSPs." Paper §4.5
//! supplies the recovery half: replay transient faults; on a persistent
//! fault, blame the marginal hardware, swap in the hot spare ("the runtime
//! layer marshals resources for invoking the parallel program's
//! execution"), recompile against the remapped devices, and replay.
//!
//! [`Runtime::launch`] is that loop, end to end. Programs are expressed
//! against *logical* devices; the runtime owns the logical→physical map.

use crate::system::System;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_compiler::schedule::{CompileOptions, CompiledProgram};
use tsm_fault::inject::{inject_schedule_with, FecStats};
use tsm_fault::spare::SparePlan;
use tsm_topology::{LinkId, NodeId, TspId};

/// Which spare-provisioning policy the deployment uses (paper §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparePolicy {
    /// One spare node per rack (≈11 % overhead).
    PerRack,
    /// One spare node per system (≈3 % overhead).
    PerSystem,
}

/// Errors from the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Compilation of the (remapped) program failed.
    Compile(String),
    /// The fault persisted and no spare was left to absorb it.
    OutOfSpares {
        /// Nodes consumed before giving up.
        nodes_failed: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Compile(e) => write!(f, "compile: {e}"),
            RuntimeError::OutOfSpares { nodes_failed } => {
                write!(
                    f,
                    "fault persisted after {nodes_failed} failovers; no spares left"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The record of one successful launch.
#[derive(Debug, Clone)]
pub struct LaunchOutcome {
    /// FEC tally of the successful execution.
    pub fec: FecStats,
    /// Total executions (1 = clean first try).
    pub attempts: u32,
    /// Nodes failed over during this launch.
    pub failovers: Vec<NodeId>,
    /// One-time initial-alignment overhead paid before the first attempt,
    /// in cycles (paper §3.2).
    pub alignment_cycles: u64,
    /// The compiled span of the (final) program.
    pub span_cycles: u64,
    /// Compilations performed during this launch. A healthy relaunch of an
    /// unchanged graph compiles zero times; each failover forces exactly
    /// one recompile against the remapped devices.
    pub compiles: u32,
    /// Compile-cache hits during this launch.
    pub reuses: u32,
}

/// The compiled artifact of one logical graph against one
/// logical→physical mapping, kept across launches so an unchanged program
/// relaunches without recompiling (the paper's deployments run one
/// compiled schedule thousands of times, §5).
#[derive(Debug)]
struct CompiledCache {
    /// Fingerprint of the logical graph the program was compiled from.
    graph_fp: u64,
    /// Mapping epoch the compile was valid for.
    epoch: u64,
    /// The compiled program.
    program: CompiledProgram,
}

/// The runtime: a system plus its spare plan, health state, and the
/// physical-fault model the health monitor observes.
#[derive(Debug)]
pub struct Runtime {
    system: System,
    plan: SparePlan,
    /// Links with a degraded BER (marginal cables, paper §4.5). Injected
    /// by tests/operators; discovered by the health monitor at runtime.
    marginal_links: HashSet<LinkId>,
    /// BER of healthy links.
    base_ber: f64,
    /// BER of marginal links.
    marginal_ber: f64,
    /// Replays to attempt before declaring a fault persistent.
    max_replays: u32,
    /// Bumped every time a failover changes the logical→physical mapping;
    /// invalidates [`CompiledCache`] entries from earlier epochs.
    mapping_epoch: u64,
    /// The last compiled program, reused while graph and mapping are
    /// unchanged.
    compiled: Option<CompiledCache>,
}

impl Runtime {
    /// Wraps a system with a spare plan.
    pub fn new(system: System, policy: SparePolicy) -> Self {
        let plan = match policy {
            SparePolicy::PerRack => SparePlan::per_rack(system.topology()),
            SparePolicy::PerSystem => SparePlan::per_system(system.topology()),
        };
        Runtime {
            system,
            plan,
            marginal_links: HashSet::new(),
            base_ber: 1e-9,
            marginal_ber: 1e-4,
            max_replays: 2,
            mapping_epoch: 0,
            compiled: None,
        }
    }

    /// Marks a physical cable as marginal (the fault the health monitor
    /// will eventually blame and route out).
    pub fn degrade_link(&mut self, link: LinkId) {
        self.marginal_links.insert(link);
    }

    /// Logical devices available to programs.
    pub fn logical_tsps(&self) -> usize {
        self.plan.logical_nodes() * tsm_topology::TSPS_PER_NODE
    }

    /// The current logical→physical device map.
    pub fn physical_tsp(&self, logical: TspId) -> TspId {
        self.plan.physical_tsp(logical)
    }

    /// The spare plan (inspection).
    pub fn spare_plan(&self) -> &SparePlan {
        &self.plan
    }

    /// Launches a logical-device program: align, compile against the
    /// current mapping, execute with health monitoring, and recover from
    /// faults by replay and failover.
    pub fn launch(&mut self, logical: &Graph, seed: u64) -> Result<LaunchOutcome, RuntimeError> {
        let alignment_cycles = self.system.plan_alignment().overhead_cycles;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut attempts = 0;
        let mut failovers = Vec::new();
        let mut compiles = 0u32;
        let mut reuses = 0u32;
        let graph_fp = graph_fingerprint(logical);

        loop {
            // Compile only when the graph or the logical→physical mapping
            // changed since the cached compile; a relaunch of an unchanged
            // program reuses the artifact outright.
            let program: CompiledProgram = match &self.compiled {
                Some(c) if c.graph_fp == graph_fp && c.epoch == self.mapping_epoch => {
                    reuses += 1;
                    c.program.clone()
                }
                _ => {
                    let physical = self.remap(logical);
                    let program = self
                        .system
                        .compile(&physical, CompileOptions::default())
                        .map_err(|e| RuntimeError::Compile(e.to_string()))?;
                    compiles += 1;
                    self.compiled = Some(CompiledCache {
                        graph_fp,
                        epoch: self.mapping_epoch,
                        program: program.clone(),
                    });
                    program
                }
            };

            // Replay budget against the current hardware mapping.
            let mut culprit_links: Vec<LinkId> = Vec::new();
            for _ in 0..=self.max_replays {
                attempts += 1;
                let (stats, culprits) = inject_schedule_with(
                    self.system.topology(),
                    program.occupancy.reservations(),
                    |l| {
                        if self.marginal_links.contains(&l) {
                            self.marginal_ber
                        } else {
                            self.base_ber
                        }
                    },
                    &mut rng,
                );
                if stats.is_clean_run() {
                    return Ok(LaunchOutcome {
                        fec: stats,
                        attempts,
                        failovers,
                        alignment_cycles,
                        span_cycles: program.span_cycles,
                        compiles,
                        reuses,
                    });
                }
                culprit_links = culprits;
            }

            // Persistent fault: the health monitor votes — every culprit
            // link implicates both its endpoint nodes, and the most
            // implicated node is swapped for a spare (paper §4.5:
            // "replace a marginal cable … or TSP card" — at runtime
            // granularity, the node).
            let mut votes: std::collections::HashMap<NodeId, usize> = Default::default();
            for &l in &culprit_links {
                let link = self.system.topology().link(l);
                *votes.entry(link.a.node()).or_insert(0) += 1;
                *votes.entry(link.b.node()).or_insert(0) += 1;
            }
            let mut candidates: Vec<(NodeId, usize)> = votes.into_iter().collect();
            candidates.sort_by_key(|&(n, count)| (std::cmp::Reverse(count), n));
            let mut swapped = false;
            for (blame, _) in candidates {
                if self
                    .plan
                    .fail_over(self.system.topology_mut(), blame)
                    .is_ok()
                {
                    failovers.push(blame);
                    // The logical→physical mapping changed: cached
                    // compiles are stale from here on.
                    self.mapping_epoch += 1;
                    swapped = true;
                    break;
                }
            }
            if !swapped {
                return Err(RuntimeError::OutOfSpares {
                    nodes_failed: failovers.len(),
                });
            }
        }
    }

    /// The number of times a failover has changed the logical→physical
    /// mapping over this runtime's lifetime.
    pub fn mapping_epoch(&self) -> u64 {
        self.mapping_epoch
    }

    /// Rewrites a logical-device graph onto the current physical mapping.
    fn remap(&self, logical: &Graph) -> Graph {
        let mut g = Graph::new();
        for node in logical.nodes() {
            let device = self.plan.physical_tsp(node.device);
            let kind = match &node.kind {
                OpKind::Transfer {
                    to,
                    bytes,
                    allow_nonminimal,
                } => OpKind::Transfer {
                    to: self.plan.physical_tsp(*to),
                    bytes: *bytes,
                    allow_nonminimal: *allow_nonminimal,
                },
                other => other.clone(),
            };
            g.add(device, kind, node.deps.clone())
                .expect("logical graph was valid");
        }
        g
    }
}

/// Deterministic fingerprint of a logical graph (`DefaultHasher` uses
/// fixed keys, so the value is stable within and across processes of the
/// same build).
fn graph_fingerprint(g: &Graph) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for node in g.nodes() {
        format!("{node:?}").hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A logical pipeline spanning the first two logical nodes.
    fn logical_pipeline() -> Graph {
        let mut g = Graph::new();
        let a = g
            .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
            .unwrap();
        let t = g
            .add(
                TspId(0),
                OpKind::Transfer {
                    to: TspId(8),
                    bytes: 640_000,
                    allow_nonminimal: true,
                },
                vec![a],
            )
            .unwrap();
        g.add(TspId(8), OpKind::Compute { cycles: 10_000 }, vec![t])
            .unwrap();
        g
    }

    fn runtime() -> Runtime {
        Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
    }

    #[test]
    fn healthy_launch_is_one_attempt() {
        let mut rt = runtime();
        let out = rt.launch(&logical_pipeline(), 1).unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.failovers.is_empty());
        assert!(out.alignment_cycles > 0);
        assert!(out.fec.is_clean_run());
        // a cold launch performs exactly one compile
        assert_eq!((out.compiles, out.reuses), (1, 0));
    }

    /// Compile-once / execute-many at the launch level: relaunching an
    /// unchanged graph on an unchanged mapping performs zero compiles.
    #[test]
    fn relaunching_unchanged_graph_reuses_compiled_program() {
        let mut rt = runtime();
        let g = logical_pipeline();
        let cold = rt.launch(&g, 1).unwrap();
        assert_eq!((cold.compiles, cold.reuses), (1, 0));
        for seed in 2..6 {
            let warm = rt.launch(&g, seed).unwrap();
            assert_eq!((warm.compiles, warm.reuses), (0, 1), "seed {seed}");
            assert_eq!(warm.span_cycles, cold.span_cycles);
        }
        // a different graph misses the cache
        let mut other = Graph::new();
        other
            .add(TspId(0), OpKind::Compute { cycles: 5_000 }, vec![])
            .unwrap();
        let out = rt.launch(&other, 7).unwrap();
        assert_eq!((out.compiles, out.reuses), (1, 0));
    }

    #[test]
    fn marginal_cable_triggers_failover_and_recovery() {
        let mut rt = runtime();
        // Degrade every cable touching logical node 1's physical node: the
        // transfer to TSP 8 will keep hitting uncorrectable errors until
        // the runtime blames node 1 and remaps it onto the spare.
        let victim = NodeId(1);
        let bad_links: Vec<LinkId> = rt
            .system
            .topology()
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        for l in bad_links {
            rt.degrade_link(l);
        }
        let out = rt.launch(&logical_pipeline(), 2).unwrap();
        assert_eq!(out.failovers, vec![victim]);
        assert!(out.attempts > 1, "must have replayed before failing over");
        // logical TSP 8 now lives on the spare node
        assert_eq!(rt.physical_tsp(TspId(8)).node(), NodeId(3));
        assert!(out.fec.is_clean_run());
        // each failover forces exactly one recompile against the new map
        assert_eq!(out.compiles, out.failovers.len() as u32 + 1);
        assert_eq!(rt.mapping_epoch(), 1);
        // and the post-failover compile is itself cached for relaunch
        let warm = rt.launch(&logical_pipeline(), 4).unwrap();
        assert_eq!((warm.compiles, warm.reuses), (0, 1));
    }

    #[test]
    fn unrecoverable_fault_reports_out_of_spares() {
        let mut rt = runtime();
        // Degrade everything: no failover can escape.
        let all: Vec<LinkId> = (0..rt.system.topology().links().len())
            .map(|i| LinkId(i as u32))
            .collect();
        for l in all {
            rt.degrade_link(l);
        }
        let err = rt.launch(&logical_pipeline(), 3).unwrap_err();
        assert!(matches!(err, RuntimeError::OutOfSpares { .. }));
    }

    #[test]
    fn launches_are_seed_deterministic() {
        let run = |seed| {
            let mut rt = runtime();
            let out = rt.launch(&logical_pipeline(), seed).unwrap();
            (out.attempts, out.span_cycles)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn logical_capacity_excludes_spares() {
        let rt = runtime();
        assert_eq!(rt.logical_tsps(), 24); // 3 logical nodes of 4 physical
    }
}
