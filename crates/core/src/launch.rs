//! The staged launch pipeline behind [`Runtime::launch`].
//!
//! The launch path used to be one ~200-line monolith interleaving
//! alignment, cache lookup, compile, execute, blame, failover and replay
//! in a single loop. [`LaunchEngine`] decomposes it into explicit stages,
//! each a separately callable (and separately testable) method with typed
//! inputs and outputs:
//!
//! ```text
//! admit ─ begin(align) ─┬─ compile_or_reuse ── execute ──ok──▶ finish
//!                       └──────── recover ◀──persistent──┘
//! ```
//!
//! [`LaunchEngine::run`] drives the stages exactly as the monolith did —
//! [`Runtime::launch`] delegates to it, and outcomes are bit-identical
//! (asserted by the `serve_identity` integration suite). The engine also
//! accepts a base cycle ([`LaunchEngine::with_base`]) so the serving
//! frontend can place each batch's launch at its dispatch cycle on one
//! shared trace timeline.

use crate::cosim::{CosimError, LinkFaultModel};
use crate::runtime::{
    graph_fingerprint, mix64, CompiledCache, ExecMode, LaunchOutcome, Runtime, RuntimeError,
    EPOCH_GAP_CYCLES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_compiler::schedule::CompileOptions;
use tsm_fault::inject::{inject_schedule_with, FecStats};
use tsm_fault::replay::{run_with_replay_fallible, FallibleReplayOutcome, ReplayPolicy};
use tsm_fault::spare::SpareError;
use tsm_topology::{LinkId, NodeId, TspId};
use tsm_trace::{names, EventKind, Metrics, RunMetrics, Tracer, RUNTIME_LANE};

/// Output of the admission stage: the launch is structurally runnable on
/// this runtime's logical device space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Structural fingerprint of the admitted logical graph — the compile
    /// cache key together with the mapping epoch.
    pub graph_fp: u64,
    /// Logical devices the runtime exposes.
    pub logical_tsps: usize,
}

/// Output of the mapping/alignment stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignmentWindow {
    /// One-time hardware-alignment overhead paid before epoch 0, in
    /// cycles (paper §3.2).
    pub alignment_cycles: u64,
}

/// Output of the compile-or-reuse stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileDecision {
    /// True when a cached compile was reused outright.
    pub reused: bool,
    /// Mapping epoch the (cached or fresh) compile is valid for.
    pub epoch: u64,
    /// Compiled span of the program, in cycles.
    pub span_cycles: u64,
}

/// Successful output of the execute stage: one replay episode converged.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptSuccess {
    /// FEC tally of the successful attempt.
    pub fec: FecStats,
    /// Destination-SRAM digests (datapath mode; empty in statistical).
    pub dst_digests: Vec<u64>,
    /// Compiled span of the executed program.
    pub span_cycles: u64,
}

/// Failure of the execute stage.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecuteFailure {
    /// The fault persisted through the replay budget; the listed links
    /// were implicated. Feed them to [`LaunchEngine::recover`].
    Persistent(Vec<LinkId>),
    /// A non-fault engine error (lowering bug, capacity limit): replaying
    /// cannot help, surface it directly.
    Fatal(RuntimeError),
}

/// What the recover stage did: one node failed over to a spare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// The node the blame vote elected and replaced.
    pub node: NodeId,
    /// Endpoint votes the elected node received.
    pub votes: u32,
    /// Mapping epoch after the failover.
    pub epoch: u64,
}

/// The staged launch pipeline. Construct with [`LaunchEngine::new`], then
/// either call [`LaunchEngine::run`] (what [`Runtime::launch`] does) or
/// drive the stages individually.
#[derive(Debug)]
pub struct LaunchEngine<'rt, 'g> {
    rt: &'rt mut Runtime,
    logical: &'g Graph,
    seed: u64,
    graph_fp: u64,
    /// Base cycle of the launch on the trace timeline.
    base: u64,
    /// Virtual clock, absolute (starts at `base`).
    clock: u64,
    alignment_cycles: u64,
    /// Statistical-mode fault RNG; state persists across attempts *and*
    /// failover episodes, exactly as the monolith's did.
    rng: StdRng,
    attempts: u32,
    failovers: Vec<NodeId>,
    /// Runtime-lane tallies of this launch.
    metrics: Metrics,
    /// Per-attempt executor snapshots absorbed across the launch.
    attempt_metrics: RunMetrics,
}

impl<'rt, 'g> LaunchEngine<'rt, 'g> {
    /// Binds a launch of `logical` with `seed` to `rt`. No stage has run
    /// yet.
    pub fn new(rt: &'rt mut Runtime, logical: &'g Graph, seed: u64) -> Self {
        let graph_fp = graph_fingerprint(logical);
        LaunchEngine {
            rt,
            logical,
            seed,
            graph_fp,
            base: 0,
            clock: 0,
            alignment_cycles: 0,
            rng: StdRng::seed_from_u64(seed),
            attempts: 0,
            failovers: Vec::new(),
            metrics: Metrics::default(),
            attempt_metrics: RunMetrics::default(),
        }
    }

    /// Bases the launch's trace timeline at `base` instead of cycle 0
    /// (builder style). Does not change any outcome field except that
    /// every traced event shifts by `base`.
    pub fn with_base(mut self, base: u64) -> Self {
        self.base = base;
        self.clock = base;
        self
    }

    /// The engine's virtual clock, absolute on the trace timeline.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// **Stage: admission.** Checks the logical graph against the
    /// runtime's logical device space: every device the program names —
    /// including transfer destinations — must be a logical TSP. Programs
    /// naming physical spares are rejected here with a typed error
    /// instead of failing deep inside remap/compile.
    pub fn admit(&self) -> Result<Admission, RuntimeError> {
        let logical_tsps = self.rt.logical_tsps();
        let check = |t: TspId| {
            if (t.0 as usize) < logical_tsps {
                Ok(())
            } else {
                Err(RuntimeError::Compile(format!(
                    "admission: device {} outside logical capacity {logical_tsps}",
                    t.0
                )))
            }
        };
        for node in self.logical.nodes() {
            check(node.device)?;
            if let OpKind::Transfer { to, .. } = node.kind {
                check(to)?;
            }
        }
        Ok(Admission {
            graph_fp: self.graph_fp,
            logical_tsps,
        })
    }

    /// **Stage: mapping/alignment.** Opens the launch on the trace
    /// timeline and pays the one-time hardware-alignment window
    /// (paper §3.2) before epoch 0.
    pub fn begin(&mut self, tracer: &mut Tracer<'_>) -> AlignmentWindow {
        self.alignment_cycles = self.rt.system.plan_alignment().overhead_cycles;
        tracer.instant(
            self.clock,
            RUNTIME_LANE,
            EventKind::LaunchBegin {
                graph_fp: self.graph_fp,
            },
        );
        if self.alignment_cycles > 0 {
            tracer.span(
                self.clock,
                self.alignment_cycles,
                RUNTIME_LANE,
                EventKind::Align,
            );
            self.clock += self.alignment_cycles;
        }
        AlignmentWindow {
            alignment_cycles: self.alignment_cycles,
        }
    }

    /// **Stage: compile-or-reuse.** Asks the residency layer for the
    /// `(graph fingerprint, mapping epoch)` entry; a relaunch of an
    /// unchanged program reuses the resident artifact outright, and any
    /// resident model — not just the last one launched — hits, so
    /// multi-model streams stop thrashing. Compiles only when no entry is
    /// resident (or the resident entry lacks the datapath artifacts this
    /// mode needs), possibly adopting a plan from the warm-start tier.
    pub fn compile_or_reuse(
        &mut self,
        tracer: &mut Tracer<'_>,
    ) -> Result<CompileDecision, RuntimeError> {
        let rt = &mut *self.rt;
        let need_datapath = rt.mode == ExecMode::Datapath;
        let cache_current = rt
            .residency
            .touch(self.graph_fp, rt.mapping_epoch, need_datapath);
        if cache_current {
            self.metrics.inc(names::RT_REUSES, 1);
            tracer.instant(
                self.clock,
                RUNTIME_LANE,
                EventKind::Reuse {
                    epoch: rt.mapping_epoch,
                },
            );
        } else {
            let physical = rt.remap(self.logical);
            let program = rt
                .system
                .compile(&physical, CompileOptions::default())
                .map_err(|e| RuntimeError::Compile(e.to_string()))?;
            let datapath = match rt.mode {
                ExecMode::Statistical => None,
                ExecMode::Datapath => Some(rt.compile_datapath(self.graph_fp, &physical)?),
            };
            self.metrics.inc(names::RT_COMPILES, 1);
            tracer.instant(
                self.clock,
                RUNTIME_LANE,
                EventKind::Compile {
                    epoch: rt.mapping_epoch,
                },
            );
            rt.residency.insert(CompiledCache {
                graph_fp: self.graph_fp,
                epoch: rt.mapping_epoch,
                program,
                datapath,
            });
        }
        let cache = rt.residency.current().expect("inserted or touched above");
        Ok(CompileDecision {
            reused: cache_current,
            epoch: cache.epoch,
            span_cycles: cache.program.span_cycles,
        })
    }

    /// **Stage: execute.** Runs one replay episode — up to
    /// `1 + max_replays` attempts — against the current hardware mapping,
    /// in the runtime's [`ExecMode`]. Success carries the final FEC tally
    /// and (datapath) SRAM digests; a persistent fault carries the
    /// implicated links for [`LaunchEngine::recover`].
    pub fn execute(&mut self, tracer: &mut Tracer<'_>) -> Result<AttemptSuccess, ExecuteFailure> {
        let seed = self.seed;
        let attempts = &mut self.attempts;
        let metrics = &self.metrics;
        let attempt_metrics = &mut self.attempt_metrics;
        let clock = &mut self.clock;
        let rng = &mut self.rng;
        let rt = &mut *self.rt;
        let cache = rt.residency.current().expect("compile_or_reuse runs first");
        let span_cycles = cache.program.span_cycles;
        // Trace-timeline width of one attempt's window.
        let window = span_cycles.max(1) + EPOCH_GAP_CYCLES;
        match rt.mode {
            ExecMode::Statistical => {
                let mut culprit_links: Vec<LinkId> = Vec::new();
                let mut success = None;
                for _ in 0..=rt.max_replays {
                    *attempts += 1;
                    metrics.inc(names::RT_ATTEMPTS, 1);
                    if *attempts > 1 {
                        metrics.inc(names::RT_REPLAYS, 1);
                    }
                    tracer.span(
                        *clock,
                        span_cycles.max(1),
                        RUNTIME_LANE,
                        EventKind::ReplayEpoch {
                            attempt: *attempts - 1,
                        },
                    );
                    let (stats, culprits) = inject_schedule_with(
                        rt.system.topology(),
                        cache.program.occupancy.reservations(),
                        |l| {
                            if rt.marginal_links.contains(&l) {
                                rt.marginal_ber
                            } else {
                                rt.base_ber
                            }
                        },
                        rng,
                    );
                    stats.record_into(metrics);
                    *clock += window;
                    if stats.is_clean_run() {
                        success = Some(stats);
                        break;
                    }
                    culprit_links = culprits;
                }
                match success {
                    Some(fec) => Ok(AttemptSuccess {
                        fec,
                        dst_digests: Vec::new(),
                        span_cycles,
                    }),
                    None => Err(ExecuteFailure::Persistent(culprit_links)),
                }
            }
            ExecMode::Datapath => {
                let art = cache
                    .datapath
                    .as_ref()
                    .expect("datapath artifacts compiled above");
                let per_link: HashMap<LinkId, f64> = rt
                    .marginal_links
                    .iter()
                    .map(|&l| (l, rt.marginal_ber))
                    .collect();
                let base_ber = rt.base_ber;
                let max_replays = rt.max_replays;
                let executor = &mut rt.executor;
                let mut culprit_links: Vec<LinkId> = Vec::new();
                let mut fatal: Option<RuntimeError> = None;
                let outcome = run_with_replay_fallible(ReplayPolicy { max_replays }, |_| {
                    if fatal.is_some() {
                        return Err(());
                    }
                    *attempts += 1;
                    metrics.inc(names::RT_ATTEMPTS, 1);
                    if *attempts > 1 {
                        metrics.inc(names::RT_REPLAYS, 1);
                    }
                    tracer.span(
                        *clock,
                        span_cycles.max(1),
                        RUNTIME_LANE,
                        EventKind::ReplayEpoch {
                            attempt: *attempts - 1,
                        },
                    );
                    // The executor's events land inside this attempt's
                    // window on the launch timeline.
                    executor.set_trace_offset(*clock);
                    // Each attempt corrupts independently; the flip
                    // pattern is a pure function of
                    // (launch seed, attempt, link, vector).
                    let faults = LinkFaultModel {
                        base_ber,
                        per_link: per_link.clone(),
                        seed: mix64(seed, *attempts as u64),
                        targeted: Vec::new(),
                    };
                    let result = executor.execute_with_faults(&art.plan, &art.payloads, &faults);
                    *clock += window;
                    match result {
                        Ok(report) => {
                            let fec = report.fec();
                            attempt_metrics.absorb(&report.metrics);
                            Ok((fec, report.dst_digests))
                        }
                        Err(CosimError::Uncorrectable { fec, culprits, .. }) => {
                            fec.record_into(metrics);
                            culprit_links.extend(culprits);
                            Err(())
                        }
                        Err(e) => {
                            fatal = Some(RuntimeError::Execution(e.to_string()));
                            Err(())
                        }
                    }
                });
                if let Some(e) = fatal {
                    return Err(ExecuteFailure::Fatal(e));
                }
                match outcome {
                    FallibleReplayOutcome::Recovered {
                        value: (fec, dst_digests),
                        ..
                    } => Ok(AttemptSuccess {
                        fec,
                        dst_digests,
                        span_cycles,
                    }),
                    FallibleReplayOutcome::Persistent { .. } => {
                        Err(ExecuteFailure::Persistent(culprit_links))
                    }
                }
            }
        }
    }

    /// **Stage: recover.** The health monitor's blame vote (paper §4.5):
    /// every culprit link implicates both its endpoint nodes, and the
    /// most implicated *replaceable* node is swapped for a spare
    /// ("replace a marginal cable … or TSP card" — at runtime
    /// granularity, the node). The failover bumps the mapping epoch, so
    /// the next [`LaunchEngine::compile_or_reuse`] recompiles.
    ///
    /// Distinguishes two failure shapes: spares genuinely exhausted
    /// ([`RuntimeError::OutOfSpares`]) vs. blame landing only on nodes
    /// outside the logical mapping (spares, already-failed nodes) —
    /// the latter is [`RuntimeError::BlameFailed`], so operators don't
    /// burn healthy spares chasing it.
    pub fn recover(
        &mut self,
        culprit_links: &[LinkId],
        tracer: &mut Tracer<'_>,
    ) -> Result<Recovery, RuntimeError> {
        let rt = &mut *self.rt;
        let mut votes: HashMap<NodeId, usize> = HashMap::new();
        for &l in culprit_links {
            let link = rt.system.topology().link(l);
            *votes.entry(link.a.node()).or_insert(0) += 1;
            *votes.entry(link.b.node()).or_insert(0) += 1;
        }
        let mut candidates: Vec<(NodeId, usize)> = votes.into_iter().collect();
        candidates.sort_by_key(|&(n, count)| (std::cmp::Reverse(count), n));
        for (blame, count) in candidates {
            match rt.plan.fail_over(rt.system.topology_mut(), blame) {
                Ok(_) => {
                    self.failovers.push(blame);
                    // The logical→physical mapping changed: every
                    // resident compile is stale from here on.
                    rt.mapping_epoch += 1;
                    rt.residency.drop_stale(rt.mapping_epoch);
                    // One blame event and one failover event per executed
                    // failover — the candidates that were skipped above
                    // never changed anything, so they don't trace.
                    self.metrics.inc(names::RT_BLAME_VOTES, 1);
                    self.metrics.inc(names::RT_FAILOVERS, 1);
                    tracer.instant(
                        self.clock,
                        RUNTIME_LANE,
                        EventKind::BlameVote {
                            node: blame.0,
                            votes: count as u32,
                        },
                    );
                    tracer.instant(
                        self.clock,
                        RUNTIME_LANE,
                        EventKind::Failover {
                            node: blame.0,
                            epoch: rt.mapping_epoch,
                        },
                    );
                    return Ok(Recovery {
                        node: blame,
                        votes: count as u32,
                        epoch: rt.mapping_epoch,
                    });
                }
                // The spare pool is shared: once empty for one candidate,
                // it is empty for all.
                Err(SpareError::NoSpareAvailable) => {
                    return Err(RuntimeError::OutOfSpares {
                        nodes_failed: self.failovers.len(),
                    })
                }
                // This candidate is not a mapped node (a spare's own
                // cables, or an already-failed node): try the next.
                Err(_) => continue,
            }
        }
        // No candidate was replaceable. If spares remain, replacing one
        // would not clear the fault — report the blame failure itself.
        if rt.plan.spares_left() == 0 {
            Err(RuntimeError::OutOfSpares {
                nodes_failed: self.failovers.len(),
            })
        } else {
            Err(RuntimeError::BlameFailed {
                spares_left: rt.plan.spares_left(),
                culprits: culprit_links.to_vec(),
            })
        }
    }

    /// Closes the launch: records the final-attempt FEC tally, traces
    /// `LaunchEnd`, and folds every stage's metrics into the outcome.
    pub fn finish(self, success: AttemptSuccess, tracer: &mut Tracer<'_>) -> LaunchOutcome {
        self.metrics.inc(names::FINAL_CLEAN, success.fec.clean);
        self.metrics
            .inc(names::FINAL_CORRECTED, success.fec.corrected);
        self.metrics
            .inc(names::FINAL_UNCORRECTABLE, success.fec.uncorrectable);
        tracer.instant(
            self.clock,
            RUNTIME_LANE,
            EventKind::LaunchEnd {
                attempts: self.attempts,
            },
        );
        let mut all = self.attempt_metrics;
        all.absorb(&self.metrics.snapshot());
        // Drain the executor's windowed samples so each outcome carries
        // exactly its own launch's heatmaps (None when telemetry is off).
        let telemetry = self.rt.executor.take_telemetry();
        LaunchOutcome {
            metrics: all,
            failovers: self.failovers,
            alignment_cycles: self.alignment_cycles,
            span_cycles: success.span_cycles,
            dst_digests: success.dst_digests,
            timeline_cycles: self.clock - self.base,
            telemetry,
        }
    }

    /// Drives the stages end to end exactly as the pre-refactor monolith
    /// did: admission, alignment, then compile → execute, recovering from
    /// persistent faults until the launch converges or recovery fails.
    pub fn run(mut self) -> Result<LaunchOutcome, RuntimeError> {
        // The launch timeline is virtual simulated time: the alignment
        // window first, then one window of `span_cycles` (plus a fixed
        // presentation gap) per attempt. The executor's trace offset is
        // re-aimed at each window so a replay's chip spans land after the
        // aborted attempt's — one faulty launch reads left-to-right as
        // flip → blame → failover → recompile → bit-identical replay.
        let sink = self.rt.sink.clone();
        let mut tracer = Tracer::new(sink.as_deref());
        self.admit()?;
        self.begin(&mut tracer);
        loop {
            self.compile_or_reuse(&mut tracer)?;
            match self.execute(&mut tracer) {
                Ok(success) => return Ok(self.finish(success, &mut tracer)),
                Err(ExecuteFailure::Fatal(e)) => return Err(e),
                Err(ExecuteFailure::Persistent(culprits)) => {
                    // Persistent fault: vote, fail over, recompile, replay.
                    self.recover(&culprits, &mut tracer)?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SparePolicy;
    use crate::system::System;

    fn logical_pipeline() -> Graph {
        let mut g = Graph::new();
        let a = g
            .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
            .unwrap();
        let t = g
            .add(
                TspId(0),
                OpKind::Transfer {
                    to: TspId(8),
                    bytes: 640_000,
                    allow_nonminimal: true,
                },
                vec![a],
            )
            .unwrap();
        g.add(TspId(8), OpKind::Compute { cycles: 10_000 }, vec![t])
            .unwrap();
        g
    }

    fn runtime() -> Runtime {
        Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
    }

    #[test]
    fn admission_rejects_devices_outside_logical_capacity() {
        let mut rt = runtime();
        assert_eq!(rt.logical_tsps(), 24);
        let mut g = Graph::new();
        g.add(TspId(24), OpKind::Compute { cycles: 100 }, vec![])
            .unwrap();
        let engine = LaunchEngine::new(&mut rt, &g, 0);
        let err = engine.admit().unwrap_err();
        assert!(matches!(err, RuntimeError::Compile(ref m) if m.contains("admission")));
        // and the full run path reports the same error
        let err = rt.launch(&g, 0).unwrap_err();
        assert!(matches!(err, RuntimeError::Compile(ref m) if m.contains("admission")));
    }

    #[test]
    fn admission_checks_transfer_destinations_too() {
        let mut rt = runtime();
        let mut g = Graph::new();
        g.add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(999),
                bytes: 320,
                allow_nonminimal: false,
            },
            vec![],
        )
        .unwrap();
        assert!(LaunchEngine::new(&mut rt, &g, 0).admit().is_err());
    }

    #[test]
    fn stages_run_individually_and_agree_with_launch() {
        let g = logical_pipeline();
        // Staged, by hand.
        let mut rt = runtime();
        let mut tracer = Tracer::new(None);
        let mut engine = LaunchEngine::new(&mut rt, &g, 7);
        let admission = engine.admit().unwrap();
        assert_eq!(admission.graph_fp, graph_fingerprint(&g));
        let align = engine.begin(&mut tracer);
        assert!(align.alignment_cycles > 0);
        let compiled = engine.compile_or_reuse(&mut tracer).unwrap();
        assert!(!compiled.reused);
        assert!(compiled.span_cycles > 0);
        let success = engine.execute(&mut tracer).unwrap();
        assert!(success.fec.is_clean_run());
        let staged = engine.finish(success, &mut tracer);
        // Monolith-compatible wrapper.
        let mut rt2 = runtime();
        let wrapped = rt2.launch(&g, 7).unwrap();
        assert_eq!(staged, wrapped);
    }

    #[test]
    fn second_compile_or_reuse_hits_the_cache() {
        let mut rt = runtime();
        let g = logical_pipeline();
        rt.launch(&g, 1).unwrap();
        let mut tracer = Tracer::new(None);
        let mut engine = LaunchEngine::new(&mut rt, &g, 2);
        let decision = engine.compile_or_reuse(&mut tracer).unwrap();
        assert!(decision.reused);
        assert_eq!(decision.epoch, 0);
    }

    /// Blame voting that lands only on unmapped nodes (here: the spare's
    /// own intra-node cables) is a distinct failure from spare
    /// exhaustion: spares remain, and swapping one would not clear the
    /// fault.
    #[test]
    fn blame_failure_with_spares_left_is_not_out_of_spares() {
        let mut rt = runtime();
        // Links internal to node 3 — the per-system spare, which is not in
        // the logical mapping.
        let spare_links: Vec<LinkId> = rt
            .system()
            .topology()
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.a.node() == NodeId(3) && l.b.node() == NodeId(3))
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        assert!(!spare_links.is_empty());
        let g = logical_pipeline();
        let mut tracer = Tracer::new(None);
        let mut engine = LaunchEngine::new(&mut rt, &g, 0);
        let err = engine.recover(&spare_links, &mut tracer).unwrap_err();
        match err {
            RuntimeError::BlameFailed {
                spares_left,
                culprits,
            } => {
                assert_eq!(spares_left, 1);
                assert_eq!(culprits, spare_links);
            }
            other => panic!("expected BlameFailed, got {other:?}"),
        }
        // the spare was NOT consumed by the failed blame
        assert_eq!(rt.spare_plan().spares_left(), 1);
    }

    /// `launch_at` shifts every traced event by the base cycle and changes
    /// nothing else about the outcome.
    #[test]
    fn launch_at_base_shifts_trace_and_preserves_outcome() {
        use std::sync::Arc;
        use tsm_trace::RingSink;
        let g = logical_pipeline();
        let run = |base: u64| {
            let sink = Arc::new(RingSink::new(1 << 14));
            let mut rt = runtime();
            rt.set_trace_sink(sink.clone());
            let out = rt.launch_at(&g, 5, base).unwrap();
            (out, sink.sorted_events())
        };
        let (at_zero, ev_zero) = run(0);
        let (at_base, ev_base) = run(10_000);
        assert_eq!(at_zero, at_base);
        assert_eq!(ev_zero.len(), ev_base.len());
        for (a, b) in ev_zero.iter().zip(ev_base.iter()) {
            assert_eq!(a.cycle + 10_000, b.cycle);
            assert_eq!(
                (a.lane, a.seq, a.dur, a.kind),
                (b.lane, b.seq, b.dur, b.kind)
            );
        }
    }
}
