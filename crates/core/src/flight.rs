//! Bounded, deterministic incident capture for the serving runtime.
//!
//! The paper's determinism pitch is that every execution is perfectly
//! explainable — but an explanation needs evidence, and a serving sweep
//! that sheds a request or goes Deviant leaves its evidence scattered
//! across the trace, the residency manager, and the telemetry windows.
//! The [`FlightRecorder`] is the post-mortem substrate: while a serve
//! run executes it shadows the serving-lane event stream in a bounded
//! ring, and when an incident fires — Deviant conformance, an
//! uncorrectable/failover launch, a shed, an expiry, or an SLO miss — it
//! snapshots
//!
//! - the **trace tail**: the last K serving-lane events on the stitched
//!   timeline,
//! - the **residency state**: lifetime stats plus every resident plan,
//! - the **queue state**: depth, capacity, tracked tenants, quota,
//! - and, at finish, the **telemetry windows bracketing** the incident
//!   cycle (`[w-1, w+1]`),
//!
//! into an [`IncidentReport`]. Everything is a pure function of the
//! serve run's seed: captures are bounded (`max_incidents`, overflow
//! counted, never reallocated into surprise memory growth),
//! serialization uses the in-repo `JsonWriter`/`Cursor` (byte-reproducible,
//! round-trip tested), and no wall clock is consulted anywhere.
//!
//! Off-is-off: a `Server` with `flight: None` never constructs a
//! recorder, so outcomes, traces, and exporter bytes are bit-identical
//! to a build without this module.

use crate::residency::{ResidencyManager, ResidencyStats, ResidentInfo};
use std::collections::VecDeque;
use tsm_trace::{
    Cursor, EventKind, JsonWriter, ShedReason, Telemetry, TimeSeries, TraceEvent, SERVING_LANE,
};

/// Capture bounds for one serve run's recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlightConfig {
    /// How many serving-lane events the trace tail keeps (last K).
    pub trace_tail: usize,
    /// How many incidents one run captures; later triggers are counted
    /// as dropped, not recorded.
    pub max_incidents: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            trace_tail: 32,
            max_incidents: 8,
        }
    }
}

/// What fired an incident capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentTrigger {
    /// A certified batch diverged from its plan (Deviant conformance).
    Deviant {
        /// Serving batch index.
        batch: u32,
    },
    /// A launch needed software replays or a failover to finish.
    Fault {
        /// Serving batch index.
        batch: u32,
        /// Replay epochs the launch consumed.
        replays: u64,
        /// Failovers the launch consumed.
        failovers: u64,
    },
    /// A request was shed at admission.
    Shed {
        /// Request id.
        request: u32,
        /// Tenant id.
        tenant: u32,
        /// Why admission refused it.
        reason: ShedReason,
    },
    /// A request's deadline passed while it was still queued.
    Expired {
        /// Request id.
        request: u32,
        /// Tenant id.
        tenant: u32,
        /// Cycles past the deadline at expiry.
        late: u64,
    },
    /// A request completed after its deadline.
    SloMiss {
        /// Request id.
        request: u32,
        /// Tenant id.
        tenant: u32,
        /// Cycles past the deadline at completion.
        late: u64,
    },
}

impl IncidentTrigger {
    /// Stable serde tag for the trigger kind.
    pub fn kind(&self) -> &'static str {
        match self {
            IncidentTrigger::Deviant { .. } => "deviant",
            IncidentTrigger::Fault { .. } => "fault",
            IncidentTrigger::Shed { .. } => "shed",
            IncidentTrigger::Expired { .. } => "expired",
            IncidentTrigger::SloMiss { .. } => "slo_miss",
        }
    }
}

impl std::fmt::Display for IncidentTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            IncidentTrigger::Deviant { batch } => write!(f, "batch {batch} went Deviant"),
            IncidentTrigger::Fault {
                batch,
                replays,
                failovers,
            } => write!(
                f,
                "batch {batch} needed {replays} replay(s), {failovers} failover(s)"
            ),
            IncidentTrigger::Shed {
                request,
                tenant,
                reason,
            } => {
                let why = match reason {
                    ShedReason::QueueFull => "queue full",
                    ShedReason::TenantOverQuota => "tenant over quota",
                };
                write!(f, "request {request} (tenant {tenant}) shed: {why}")
            }
            IncidentTrigger::Expired {
                request,
                tenant,
                late,
            } => write!(
                f,
                "request {request} (tenant {tenant}) expired in queue, {late} cycles late"
            ),
            IncidentTrigger::SloMiss {
                request,
                tenant,
                late,
            } => write!(
                f,
                "request {request} (tenant {tenant}) missed SLO by {late} cycles"
            ),
        }
    }
}

/// One captured incident: the trigger plus every snapshot listed in the
/// module docs. Serializes through [`IncidentReport::to_json`] /
/// [`IncidentReport::from_json`]; byte-reproducible from the serve seed.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentReport {
    /// Global trigger ordinal within the run (dropped triggers still
    /// advance it, so gaps reveal overflow).
    pub seq: u64,
    /// Virtual cycle at which the trigger fired.
    pub cycle: u64,
    /// What fired.
    pub trigger: IncidentTrigger,
    /// Last K serving-lane events before (and including) the trigger.
    pub trace_tail: Vec<TraceEvent>,
    /// Residency manager lifetime counters at trigger.
    pub residency: ResidencyStats,
    /// Every resident plan at trigger, sorted by `(graph_fp, epoch)`.
    pub resident: Vec<ResidentInfo>,
    /// Requests in the work queue at trigger.
    pub queue_depth: u64,
    /// The queue's configured capacity.
    pub queue_capacity: u64,
    /// Tenants with at least one queued request at trigger.
    pub tracked_tenants: u64,
    /// The per-tenant in-queue quota.
    pub tenant_quota: u64,
    /// The telemetry window containing the trigger cycle (when the run
    /// sampled telemetry).
    pub telemetry_window: Option<u64>,
    /// Telemetry restricted to the windows bracketing the incident
    /// (`[w-1, w+1]`), attached at [`FlightRecorder::finish`].
    pub telemetry: Option<Telemetry>,
}

impl IncidentReport {
    /// Pretty-printed JSON via the in-repo writer. Deterministic: field
    /// order is fixed and every collection is already sorted.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_u64("seq", self.seq);
        w.field_u64("cycle", self.cycle);
        w.key("trigger").begin_object();
        w.field_str("kind", self.trigger.kind());
        match self.trigger {
            IncidentTrigger::Deviant { batch } => {
                w.field_u64("batch", u64::from(batch));
            }
            IncidentTrigger::Fault {
                batch,
                replays,
                failovers,
            } => {
                w.field_u64("batch", u64::from(batch));
                w.field_u64("replays", replays);
                w.field_u64("failovers", failovers);
            }
            IncidentTrigger::Shed {
                request,
                tenant,
                reason,
            } => {
                w.field_u64("request", u64::from(request));
                w.field_u64("tenant", u64::from(tenant));
                w.field_str(
                    "reason",
                    match reason {
                        ShedReason::QueueFull => "queue_full",
                        ShedReason::TenantOverQuota => "tenant_over_quota",
                    },
                );
            }
            IncidentTrigger::Expired {
                request,
                tenant,
                late,
            }
            | IncidentTrigger::SloMiss {
                request,
                tenant,
                late,
            } => {
                w.field_u64("request", u64::from(request));
                w.field_u64("tenant", u64::from(tenant));
                w.field_u64("late", late);
            }
        }
        w.end_object();
        w.field_u64("queue_depth", self.queue_depth);
        w.field_u64("queue_capacity", self.queue_capacity);
        w.field_u64("tracked_tenants", self.tracked_tenants);
        w.field_u64("tenant_quota", self.tenant_quota);
        w.key("residency").begin_object();
        w.field_u64("hits", self.residency.hits);
        w.field_u64("misses", self.residency.misses);
        w.field_u64("evictions", self.residency.evictions);
        w.field_u64("stale_drops", self.residency.stale_drops);
        w.field_u64("warm_starts", self.residency.warm_starts);
        w.field_u64("resident_bytes", self.residency.resident_bytes);
        w.field_u64("resident_plans", self.residency.resident_plans);
        w.end_object();
        w.key("resident").begin_array();
        for r in &self.resident {
            w.begin_object();
            w.field_u64("graph_fp", r.graph_fp);
            w.field_u64("epoch", r.epoch);
            w.field_u64("bytes", r.bytes);
            w.field_u64("last_used", r.last_used);
            w.key("has_datapath");
            w.bool(r.has_datapath);
            w.end_object();
        }
        w.end_array();
        w.key("trace_tail").begin_array();
        for e in &self.trace_tail {
            w.raw(&e.to_json());
        }
        w.end_array();
        if let Some(tw) = self.telemetry_window {
            w.field_u64("telemetry_window", tw);
        }
        if let Some(t) = &self.telemetry {
            w.field_raw("telemetry", &t.to_json());
        }
        w.end_object();
        w.finish()
    }

    /// Parses a document produced by [`IncidentReport::to_json`].
    pub fn from_json(s: &str) -> Result<IncidentReport, String> {
        let mut c = Cursor::new(s);
        let report = Self::parse(&mut c)?;
        c.expect_end()?;
        Ok(report)
    }

    /// Parses one incident object at the cursor.
    pub fn parse(c: &mut Cursor<'_>) -> Result<IncidentReport, String> {
        let mut seq = None;
        let mut cycle = None;
        let mut trigger = None;
        let mut trace_tail = Vec::new();
        let mut residency = ResidencyStats::default();
        let mut resident = Vec::new();
        let mut queue_depth = None;
        let mut queue_capacity = None;
        let mut tracked_tenants = None;
        let mut tenant_quota = None;
        let mut telemetry_window = None;
        let mut telemetry = None;
        c.object(|c, key| match key {
            "seq" => {
                seq = Some(c.u64()?);
                Ok(())
            }
            "cycle" => {
                cycle = Some(c.u64()?);
                Ok(())
            }
            "trigger" => {
                trigger = Some(parse_trigger(c)?);
                Ok(())
            }
            "queue_depth" => {
                queue_depth = Some(c.u64()?);
                Ok(())
            }
            "queue_capacity" => {
                queue_capacity = Some(c.u64()?);
                Ok(())
            }
            "tracked_tenants" => {
                tracked_tenants = Some(c.u64()?);
                Ok(())
            }
            "tenant_quota" => {
                tenant_quota = Some(c.u64()?);
                Ok(())
            }
            "residency" => c.object(|c, key| {
                let v = c.u64()?;
                match key {
                    "hits" => residency.hits = v,
                    "misses" => residency.misses = v,
                    "evictions" => residency.evictions = v,
                    "stale_drops" => residency.stale_drops = v,
                    "warm_starts" => residency.warm_starts = v,
                    "resident_bytes" => residency.resident_bytes = v,
                    "resident_plans" => residency.resident_plans = v,
                    other => return Err(format!("unknown residency key {other:?}")),
                }
                Ok(())
            }),
            "resident" => c.array(|c| {
                let mut info = ResidentInfo {
                    graph_fp: 0,
                    epoch: 0,
                    bytes: 0,
                    last_used: 0,
                    has_datapath: false,
                };
                c.object(|c, key| {
                    match key {
                        "graph_fp" => info.graph_fp = c.u64()?,
                        "epoch" => info.epoch = c.u64()?,
                        "bytes" => info.bytes = c.u64()?,
                        "last_used" => info.last_used = c.u64()?,
                        "has_datapath" => info.has_datapath = c.bool()?,
                        other => return Err(format!("unknown resident key {other:?}")),
                    }
                    Ok(())
                })?;
                resident.push(info);
                Ok(())
            }),
            "trace_tail" => c.array(|c| {
                trace_tail.push(TraceEvent::parse(c)?);
                Ok(())
            }),
            "telemetry_window" => {
                telemetry_window = Some(c.u64()?);
                Ok(())
            }
            "telemetry" => {
                telemetry = Some(Telemetry::from_json(c.raw_value()?)?);
                Ok(())
            }
            other => Err(format!("unknown incident key {other:?}")),
        })?;
        Ok(IncidentReport {
            seq: seq.ok_or("incident missing seq")?,
            cycle: cycle.ok_or("incident missing cycle")?,
            trigger: trigger.ok_or("incident missing trigger")?,
            trace_tail,
            residency,
            resident,
            queue_depth: queue_depth.ok_or("incident missing queue_depth")?,
            queue_capacity: queue_capacity.ok_or("incident missing queue_capacity")?,
            tracked_tenants: tracked_tenants.ok_or("incident missing tracked_tenants")?,
            tenant_quota: tenant_quota.ok_or("incident missing tenant_quota")?,
            telemetry_window,
            telemetry,
        })
    }

    /// Human-readable multi-line rendering, for `repro incidents`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "incident #{} @ cycle {} [{}] — {}",
            self.seq,
            self.cycle,
            self.trigger.kind(),
            self.trigger
        );
        let _ = writeln!(
            out,
            "  queue: {}/{} requests, {} tenant(s) tracked (quota {})",
            self.queue_depth, self.queue_capacity, self.tracked_tenants, self.tenant_quota
        );
        let _ = writeln!(
            out,
            "  residency: {} plan(s) / {} B resident, {} hit(s), {} miss(es), {} eviction(s)",
            self.residency.resident_plans,
            self.residency.resident_bytes,
            self.residency.hits,
            self.residency.misses,
            self.residency.evictions
        );
        match (self.trace_tail.first(), self.trace_tail.last()) {
            (Some(first), Some(last)) => {
                let _ = writeln!(
                    out,
                    "  trace tail: {} event(s), cycles {}..={}",
                    self.trace_tail.len(),
                    first.cycle,
                    last.cycle
                );
            }
            _ => {
                let _ = writeln!(out, "  trace tail: empty");
            }
        }
        match (&self.telemetry, self.telemetry_window) {
            (Some(t), Some(w)) => {
                let _ = writeln!(
                    out,
                    "  telemetry: {} series bracketing window {} ({}..={})",
                    t.series.len(),
                    w,
                    w.saturating_sub(1),
                    w + 1
                );
            }
            _ => {
                let _ = writeln!(out, "  telemetry: not sampled");
            }
        }
        out
    }
}

fn parse_trigger(c: &mut Cursor<'_>) -> Result<IncidentTrigger, String> {
    let mut kind = None;
    let mut reason = None;
    let mut nums: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    c.object(|c, key| {
        match key {
            "kind" => kind = Some(c.string()?),
            "reason" => reason = Some(c.string()?),
            other => {
                nums.insert(other.to_string(), c.u64()?);
            }
        }
        Ok(())
    })?;
    let num = |k: &str| -> Result<u64, String> {
        nums.get(k).copied().ok_or(format!("trigger missing {k:?}"))
    };
    let num32 = |k: &str| -> Result<u32, String> {
        u32::try_from(num(k)?).map_err(|_| format!("trigger field {k:?} out of u32 range"))
    };
    match kind.as_deref() {
        Some("deviant") => Ok(IncidentTrigger::Deviant {
            batch: num32("batch")?,
        }),
        Some("fault") => Ok(IncidentTrigger::Fault {
            batch: num32("batch")?,
            replays: num("replays")?,
            failovers: num("failovers")?,
        }),
        Some("shed") => Ok(IncidentTrigger::Shed {
            request: num32("request")?,
            tenant: num32("tenant")?,
            reason: match reason.as_deref() {
                Some("queue_full") => ShedReason::QueueFull,
                Some("tenant_over_quota") => ShedReason::TenantOverQuota,
                other => return Err(format!("bad shed reason {other:?}")),
            },
        }),
        Some("expired") => Ok(IncidentTrigger::Expired {
            request: num32("request")?,
            tenant: num32("tenant")?,
            late: num("late")?,
        }),
        Some("slo_miss") => Ok(IncidentTrigger::SloMiss {
            request: num32("request")?,
            tenant: num32("tenant")?,
            late: num("late")?,
        }),
        other => Err(format!("unknown trigger kind {other:?}")),
    }
}

/// The recorder one serve run threads through its event loop. See the
/// module docs for the capture model.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    tail: VecDeque<TraceEvent>,
    incidents: Vec<IncidentReport>,
    /// Total triggers fired, including ones dropped at capacity.
    fired: u64,
    /// Sequence number of the next observed event.
    observed: u32,
}

impl FlightRecorder {
    /// An empty recorder with the given bounds.
    pub fn new(cfg: FlightConfig) -> Self {
        FlightRecorder {
            cfg,
            tail: VecDeque::with_capacity(cfg.trace_tail.min(1024)),
            incidents: Vec::new(),
            fired: 0,
            observed: 0,
        }
    }

    /// Shadows one serving-lane event into the bounded tail. The
    /// recorder stamps its own sequence numbers, so the tail is
    /// well-formed even on runs with no trace sink attached.
    pub fn observe(&mut self, cycle: u64, kind: EventKind) {
        let seq = self.observed;
        self.observed = self.observed.wrapping_add(1);
        if self.cfg.trace_tail == 0 {
            return;
        }
        if self.tail.len() == self.cfg.trace_tail {
            self.tail.pop_front();
        }
        self.tail.push_back(TraceEvent {
            cycle,
            lane: SERVING_LANE,
            seq,
            dur: 0,
            kind,
        });
    }

    /// Captures an incident: the trigger plus the tail/residency/queue
    /// snapshots. Beyond `max_incidents` the trigger only advances the
    /// ordinal (visible as a `seq` gap and in
    /// [`FlightRecorder::dropped`]).
    #[allow(clippy::too_many_arguments)]
    pub fn trigger(
        &mut self,
        trigger: IncidentTrigger,
        cycle: u64,
        residency: &ResidencyManager,
        queue_depth: u64,
        queue_capacity: u64,
        tracked_tenants: u64,
        tenant_quota: u64,
    ) {
        let seq = self.fired;
        self.fired += 1;
        if self.incidents.len() >= self.cfg.max_incidents {
            return;
        }
        self.incidents.push(IncidentReport {
            seq,
            cycle,
            trigger,
            trace_tail: self.tail.iter().copied().collect(),
            residency: residency.stats(),
            resident: residency.resident(),
            queue_depth,
            queue_capacity,
            tracked_tenants,
            tenant_quota,
            telemetry_window: None,
            telemetry: None,
        });
    }

    /// Incidents captured so far.
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Triggers that fired after the capture bound was hit.
    pub fn dropped(&self) -> u64 {
        self.fired - self.incidents.len() as u64
    }

    /// Seals the run: attaches to every incident the telemetry windows
    /// bracketing its trigger cycle (`[w-1, w+1]` on the sampler's
    /// window axis) and returns the captured incidents in trigger order.
    pub fn finish(self, telemetry: Option<&Telemetry>) -> Vec<IncidentReport> {
        let mut incidents = self.incidents;
        if let Some(t) = telemetry {
            let window = t.window.max(1);
            for inc in &mut incidents {
                let w = inc.cycle / window;
                let lo = w.saturating_sub(1);
                let hi = w + 1;
                let series: Vec<TimeSeries> = t
                    .series
                    .iter()
                    .filter_map(|s| {
                        let points: Vec<(u64, u64)> = s
                            .points
                            .iter()
                            .copied()
                            .filter(|&(pw, _)| (lo..=hi).contains(&pw))
                            .collect();
                        if points.is_empty() {
                            return None;
                        }
                        let mut clipped = TimeSeries::new(&s.name, &s.label, s.kind);
                        clipped.points = points;
                        Some(clipped)
                    })
                    .collect();
                inc.telemetry_window = Some(w);
                inc.telemetry = Some(Telemetry {
                    window: t.window,
                    slo_permille: t.slo_permille,
                    series,
                });
            }
        }
        incidents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_trace::{Sampler, TelemetryConfig};

    fn enqueue(request: u32) -> EventKind {
        EventKind::RequestEnqueue { tenant: 0, request }
    }

    fn shed(request: u32) -> IncidentTrigger {
        IncidentTrigger::Shed {
            request,
            tenant: 1,
            reason: ShedReason::QueueFull,
        }
    }

    #[test]
    fn tail_is_bounded_and_keeps_the_newest_events() {
        let mut f = FlightRecorder::new(FlightConfig {
            trace_tail: 3,
            max_incidents: 8,
        });
        for i in 0..5u32 {
            f.observe(100 + u64::from(i), enqueue(i));
        }
        let res = ResidencyManager::new();
        f.trigger(shed(9), 500, &res, 2, 4, 1, 2);
        let incidents = f.finish(None);
        let tail: Vec<u32> = incidents[0].trace_tail.iter().map(|e| e.seq).collect();
        assert_eq!(tail, vec![2, 3, 4], "oldest events fell off the front");
    }

    #[test]
    fn capture_is_bounded_and_overflow_is_visible() {
        let mut f = FlightRecorder::new(FlightConfig {
            trace_tail: 4,
            max_incidents: 2,
        });
        let res = ResidencyManager::new();
        for i in 0..5 {
            f.trigger(shed(i), 100 + u64::from(i), &res, 0, 4, 0, 2);
        }
        assert_eq!(f.len(), 2);
        assert_eq!(f.dropped(), 3);
        let incidents = f.finish(None);
        assert_eq!(incidents.len(), 2);
        assert_eq!(
            (incidents[0].seq, incidents[1].seq),
            (0, 1),
            "seq is the global trigger ordinal"
        );
    }

    #[test]
    fn finish_attaches_the_bracketing_telemetry_windows() {
        let mut s = Sampler::new(TelemetryConfig {
            window: 100,
            slo_permille: 990,
        });
        // Windows 0..=5 each get one count; the incident in window 3
        // must carry exactly windows 2..=4.
        for w in 0..6u64 {
            s.count("serve.throughput", "t0", w * 100, 1);
        }
        let t = s.finish();
        let mut f = FlightRecorder::new(FlightConfig::default());
        let res = ResidencyManager::new();
        f.trigger(shed(1), 350, &res, 1, 4, 1, 2);
        let incidents = f.finish(Some(&t));
        let inc = &incidents[0];
        assert_eq!(inc.telemetry_window, Some(3));
        let tel = inc.telemetry.as_ref().unwrap();
        assert_eq!(tel.window, 100);
        let pts = &tel.get("serve.throughput", "t0").unwrap().points;
        assert_eq!(pts, &vec![(2, 1), (3, 1), (4, 1)]);
    }

    #[test]
    fn incident_json_round_trips_byte_identically() {
        let mut s = Sampler::new(TelemetryConfig {
            window: 64,
            slo_permille: 990,
        });
        s.count("serve.slo.missed", "t1", 130, 2);
        let t = s.finish();
        let mut f = FlightRecorder::new(FlightConfig {
            trace_tail: 2,
            max_incidents: 4,
        });
        f.observe(100, enqueue(0));
        f.observe(120, enqueue(1));
        let res = ResidencyManager::new();
        f.trigger(
            IncidentTrigger::Fault {
                batch: 3,
                replays: 2,
                failovers: 1,
            },
            140,
            &res,
            3,
            8,
            2,
            4,
        );
        let mut incidents = f.finish(Some(&t));
        // Exercise the resident-list serde too.
        incidents[0].resident.push(ResidentInfo {
            graph_fp: 0xDEAD_BEEF,
            epoch: 1,
            bytes: 4096,
            last_used: 7,
            has_datapath: true,
        });
        let json = incidents[0].to_json();
        let back = IncidentReport::from_json(&json).expect("round trip");
        assert_eq!(back, incidents[0]);
        assert_eq!(back.to_json(), json, "re-serialization is byte-identical");
    }

    #[test]
    fn every_trigger_kind_round_trips_and_renders() {
        let res = ResidencyManager::new();
        let triggers = [
            IncidentTrigger::Deviant { batch: 2 },
            IncidentTrigger::Fault {
                batch: 0,
                replays: 5,
                failovers: 0,
            },
            IncidentTrigger::Shed {
                request: 1,
                tenant: 2,
                reason: ShedReason::TenantOverQuota,
            },
            IncidentTrigger::Expired {
                request: 3,
                tenant: 0,
                late: 44,
            },
            IncidentTrigger::SloMiss {
                request: 4,
                tenant: 1,
                late: 9,
            },
        ];
        let mut f = FlightRecorder::new(FlightConfig::default());
        for (i, &tr) in triggers.iter().enumerate() {
            f.trigger(tr, 100 * (i as u64 + 1), &res, 1, 4, 1, 2);
        }
        for inc in f.finish(None) {
            let back = IncidentReport::from_json(&inc.to_json()).expect("round trip");
            assert_eq!(back, inc);
            let rendered = inc.render();
            assert!(rendered.contains(&format!("[{}]", inc.trigger.kind())));
            assert!(rendered.contains("queue: 1/4"));
        }
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(IncidentReport::from_json("{}").is_err(), "missing fields");
        assert!(
            IncidentReport::from_json(
                "{\"seq\":0,\"cycle\":1,\"trigger\":{\"kind\":\"nope\"},\"queue_depth\":0,\
                 \"queue_capacity\":0,\"tracked_tenants\":0,\"tenant_quota\":0}"
            )
            .is_err(),
            "unknown trigger kind"
        );
        assert!(
            IncidentReport::from_json(
                "{\"seq\":0,\"cycle\":1,\"trigger\":{\"kind\":\"shed\",\"request\":1,\
                 \"tenant\":0,\"reason\":\"bogus\"},\"queue_depth\":0,\"queue_capacity\":0,\
                 \"tracked_tenants\":0,\"tenant_quota\":0}"
            )
            .is_err(),
            "bad shed reason"
        );
    }
}
