//! Bounded, deterministic residency for compiled plans.
//!
//! The paper's software-defined model compiles a schedule once and
//! executes it thousands of times (§5); a serving frontend that
//! round-robins several models therefore lives or dies on compiled-plan
//! reuse. [`ResidencyManager`] keeps the compiled artifact of *each*
//! `(graph fingerprint, mapping epoch)` pair resident — replacing the
//! runtime's old single-entry cache, which thrashed the moment two
//! models alternated — under a configurable byte budget with cost-aware
//! LRU eviction.
//!
//! # Determinism
//!
//! Recency is a monotone *launch sequence number*, never wall clock:
//! every touch stamps the entry with the next integer. Sequence numbers
//! are unique, so the LRU victim (minimum stamp) is always unique and
//! eviction order is a pure function of the launch history — independent
//! of `HashMap` iteration order, thread scheduling, and host speed.
//! Serial ≡ parallel bit-identity and seed-reproducibility survive.
//!
//! # Warm-start tier
//!
//! Datapath [`CompiledPlan`]s are serde-ready and serialize through the
//! same hand-rolled JSON as the plan dumper, so a fleet can persist its
//! plans at shutdown ([`ResidencyManager::export_warm`]) and reload them
//! into a fresh [`Runtime`](crate::runtime::Runtime)
//! ([`ResidencyManager::import_warm`]). A warm-started launch adopts the
//! stored plan instead of re-lowering transfers; because plan lowering is
//! deterministic, the adopted plan is bit-identical to what a cold
//! compile would have produced, and the launch outcome is too. The warm
//! tier models a disk artifact store: its bytes do not count against the
//! residency budget, and an adopted plan moves out of the tier into
//! residency.

use crate::cosim::{CompiledPlan, TransferShape};
use crate::runtime::CompiledCache;
use std::collections::HashMap;
use tsm_trace::{names, JsonWriter, Metrics, RunMetrics};

/// A resident compiled artifact plus its residency bookkeeping.
#[derive(Debug)]
struct Resident {
    cache: CompiledCache,
    /// Estimated heap footprint of the artifact, fixed at insert.
    bytes: u64,
    /// Launch sequence number of the last touch (monotone, unique).
    last_used: u64,
}

/// A plan persisted by the warm-start tier, keyed like a resident entry.
#[derive(Debug)]
struct WarmEntry {
    graph_fp: u64,
    epoch: u64,
    plan: CompiledPlan,
}

/// Lifetime counters of one manager. Monotone — deltas between two
/// snapshots give per-serve-run tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Launches that found their plan resident.
    pub hits: u64,
    /// Launches that had to compile.
    pub misses: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries dropped because their mapping epoch went stale.
    pub stale_drops: u64,
    /// Datapath plans adopted from the warm-start tier.
    pub warm_starts: u64,
    /// Estimated bytes currently resident.
    pub resident_bytes: u64,
    /// Plans currently resident.
    pub resident_plans: u64,
}

/// Inspection view of one resident entry (see
/// [`ResidencyManager::resident`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentInfo {
    /// Fingerprint of the logical graph.
    pub graph_fp: u64,
    /// Mapping epoch the entry was compiled against.
    pub epoch: u64,
    /// Estimated heap footprint in bytes.
    pub bytes: u64,
    /// Launch sequence number of the last touch.
    pub last_used: u64,
    /// Whether the entry carries a datapath artifact.
    pub has_datapath: bool,
}

/// The bounded plan cache. See the module docs for semantics.
#[derive(Debug)]
pub struct ResidencyManager {
    entries: HashMap<(u64, u64), Resident>,
    warm: Vec<WarmEntry>,
    /// Key of the most recently touched/inserted entry — the plan the
    /// in-flight (or just-finished) launch executes from.
    current: Option<(u64, u64)>,
    /// Next launch sequence number.
    seq: u64,
    budget_bytes: u64,
    resident_bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    stale_drops: u64,
    warm_starts: u64,
}

impl ResidencyManager {
    /// An empty manager with an effectively unbounded budget.
    pub(crate) fn new() -> Self {
        ResidencyManager {
            entries: HashMap::new(),
            warm: Vec::new(),
            current: None,
            seq: 0,
            budget_bytes: u64::MAX,
            resident_bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            stale_drops: 0,
            warm_starts: 0,
        }
    }

    /// The configured byte budget (`u64::MAX` = unbounded).
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Sets the byte budget and immediately evicts down to it. A budget
    /// of `0` keeps only the most recently used plan — exactly the
    /// pre-residency single-entry cache behavior.
    pub fn set_budget_bytes(&mut self, budget: u64) {
        self.budget_bytes = budget;
        self.evict_to_budget();
    }

    /// Lifetime counters plus the resident gauges.
    pub fn stats(&self) -> ResidencyStats {
        ResidencyStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            stale_drops: self.stale_drops,
            warm_starts: self.warm_starts,
            resident_bytes: self.resident_bytes,
            resident_plans: self.entries.len() as u64,
        }
    }

    /// Every resident entry, sorted by `(graph_fp, epoch)` for
    /// deterministic inspection.
    pub fn resident(&self) -> Vec<ResidentInfo> {
        let mut v: Vec<ResidentInfo> = self
            .entries
            .iter()
            .map(|(&(graph_fp, epoch), r)| ResidentInfo {
                graph_fp,
                epoch,
                bytes: r.bytes,
                last_used: r.last_used,
                has_datapath: r.cache.datapath.is_some(),
            })
            .collect();
        v.sort_by_key(|i| (i.graph_fp, i.epoch));
        v
    }

    /// Plans waiting in the warm-start tier.
    pub fn warm_len(&self) -> usize {
        self.warm.len()
    }

    /// The entry the in-flight launch executes from.
    pub(crate) fn current(&self) -> Option<&CompiledCache> {
        self.current
            .and_then(|k| self.entries.get(&k))
            .map(|r| &r.cache)
    }

    /// Looks up `(graph_fp, epoch)` and, on a hit, stamps it as the
    /// current entry with a fresh sequence number. `need_datapath`
    /// mirrors the launch mode: a datapath launch cannot reuse a
    /// program-only entry (it will recompile and upgrade it in place),
    /// while a statistical launch happily reuses a datapath-bearing one.
    pub(crate) fn touch(&mut self, graph_fp: u64, epoch: u64, need_datapath: bool) -> bool {
        let hit = match self.entries.get_mut(&(graph_fp, epoch)) {
            Some(r) if !need_datapath || r.cache.datapath.is_some() => {
                r.last_used = self.seq;
                true
            }
            _ => false,
        };
        self.seq += 1;
        if hit {
            self.current = Some((graph_fp, epoch));
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Inserts a freshly compiled artifact as the current entry and
    /// evicts LRU entries until the budget holds again. Replacing an
    /// existing key (the statistical→datapath upgrade) is not an
    /// eviction. The current entry itself is never evicted — even a
    /// zero-byte budget keeps the plan the launch is about to execute.
    pub(crate) fn insert(&mut self, cache: CompiledCache) {
        let key = (cache.graph_fp, cache.epoch);
        let bytes = cache_bytes(&cache);
        if let Some(old) = self.entries.remove(&key) {
            self.resident_bytes -= old.bytes;
        }
        self.resident_bytes += bytes;
        self.entries.insert(
            key,
            Resident {
                cache,
                bytes,
                last_used: self.seq,
            },
        );
        self.seq += 1;
        self.current = Some(key);
        self.evict_to_budget();
    }

    /// Drops every entry whose mapping epoch predates `current_epoch`
    /// (their logical→physical mapping no longer exists after a
    /// failover).
    pub(crate) fn drop_stale(&mut self, current_epoch: u64) {
        let stale: Vec<(u64, u64)> = self
            .entries
            .keys()
            .copied()
            .filter(|&(_, e)| e < current_epoch)
            .collect();
        for key in stale {
            let r = self.entries.remove(&key).expect("listed above");
            self.resident_bytes -= r.bytes;
            self.stale_drops += 1;
            if self.current == Some(key) {
                self.current = None;
            }
        }
    }

    /// Evicts strictly-least-recently-used entries until
    /// `resident_bytes <= budget`. The minimum `last_used` stamp is
    /// unique, so the victim sequence is deterministic and independent of
    /// `HashMap` iteration order. Always keeps at least one entry (the
    /// current one, which has the maximum stamp).
    fn evict_to_budget(&mut self) {
        while self.resident_bytes > self.budget_bytes && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, r)| r.last_used)
                .map(|(&k, _)| k)
                .expect("len > 1");
            let r = self.entries.remove(&victim).expect("chosen above");
            self.resident_bytes -= r.bytes;
            self.evictions += 1;
            if self.current == Some(victim) {
                self.current = None;
            }
        }
    }

    /// Takes a plan out of the warm-start tier if one matches the key
    /// *and* the freshly lowered transfer shapes (a shape mismatch means
    /// the stored plan belongs to a different lowering and must not be
    /// adopted). The plan moves into the launch's new resident entry, so
    /// it leaves the tier on use.
    pub(crate) fn take_warm(
        &mut self,
        graph_fp: u64,
        epoch: u64,
        shapes: &[TransferShape],
    ) -> Option<CompiledPlan> {
        let at = self
            .warm
            .iter()
            .position(|w| w.graph_fp == graph_fp && w.epoch == epoch && w.plan.shapes == shapes)?;
        let entry = self.warm.swap_remove(at);
        self.warm_starts += 1;
        Some(entry.plan)
    }

    /// Serializes every resident *datapath* plan (the warm tier persists
    /// plans, not programs) as pretty-printed JSON, sorted by
    /// `(graph_fp, epoch)` so the export is a deterministic function of
    /// the resident set.
    pub fn export_warm(&self) -> String {
        let mut keys: Vec<(u64, u64)> = self
            .entries
            .iter()
            .filter(|(_, r)| r.cache.datapath.is_some())
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_u64("version", 1);
        w.key("plans").begin_array();
        for key in keys {
            let r = &self.entries[&key];
            let plan = &r.cache.datapath.as_ref().expect("filtered above").plan;
            w.begin_object();
            w.field_u64("graph_fp", key.0);
            w.field_u64("epoch", key.1);
            w.field_raw("plan", &plan.to_json());
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Loads plans serialized by [`ResidencyManager::export_warm`] into
    /// the warm tier, returning how many were loaded. Malformed input is
    /// rejected with a descriptive error and leaves the tier unchanged.
    pub fn import_warm(&mut self, s: &str) -> Result<usize, String> {
        let mut loaded: Vec<WarmEntry> = Vec::new();
        let mut cur = tsm_trace::Cursor::new(s);
        cur.object(|cur, key| match key {
            "version" => {
                let v = cur.u64()?;
                if v != 1 {
                    return Err(format!("unsupported warm-tier version {v}"));
                }
                Ok(())
            }
            "plans" => cur.array(|cur| {
                let mut graph_fp = None;
                let mut epoch = None;
                let mut plan = None;
                cur.object(|cur, key| match key {
                    "graph_fp" => {
                        graph_fp = Some(cur.u64()?);
                        Ok(())
                    }
                    "epoch" => {
                        epoch = Some(cur.u64()?);
                        Ok(())
                    }
                    "plan" => {
                        plan = Some(CompiledPlan::from_json(cur.raw_value()?)?);
                        Ok(())
                    }
                    other => Err(format!("unknown warm-plan key {other:?}")),
                })?;
                loaded.push(WarmEntry {
                    graph_fp: graph_fp.ok_or("warm plan missing graph_fp")?,
                    epoch: epoch.ok_or("warm plan missing epoch")?,
                    plan: plan.ok_or("warm plan missing plan")?,
                });
                Ok(())
            }),
            other => Err(format!("unknown warm-tier key {other:?}")),
        })?;
        cur.expect_end()?;
        let n = loaded.len();
        self.warm.extend(loaded);
        Ok(n)
    }

    /// Folds the delta between two [`ResidencyStats`] snapshots (plus the
    /// current gauges) into a metrics registry — how `Server::serve`
    /// reports per-run residency behavior without perturbing per-launch
    /// metrics.
    pub fn record_delta(&self, before: &ResidencyStats, metrics: &Metrics) {
        let after = self.stats();
        metrics.inc(names::RES_HITS, after.hits - before.hits);
        metrics.inc(names::RES_MISSES, after.misses - before.misses);
        metrics.inc(names::RES_EVICTIONS, after.evictions - before.evictions);
        metrics.inc(
            names::RES_STALE_DROPS,
            after.stale_drops - before.stale_drops,
        );
        metrics.inc(
            names::RES_WARM_STARTS,
            after.warm_starts - before.warm_starts,
        );
        metrics.set_gauge(names::RES_RESIDENT_BYTES, after.resident_bytes);
        metrics.set_gauge(names::RES_RESIDENT_PLANS, after.resident_plans);
    }

    /// Lifetime counters as a standalone snapshot (for callers outside a
    /// serving run).
    pub fn run_metrics(&self) -> RunMetrics {
        let m = Metrics::default();
        self.record_delta(&ResidencyStats::default(), &m);
        m.snapshot()
    }
}

/// Estimated heap footprint of one compiled artifact: the program's
/// per-op timing vectors and link reservations, the datapath plan's
/// shapes/slab/chip manifests, and the synthetic payload vectors. An
/// estimate, not an exact allocator tally — what matters is that it is
/// deterministic and proportional, so budget arithmetic is reproducible.
fn cache_bytes(cache: &CompiledCache) -> u64 {
    use std::mem::{size_of, size_of_val};
    let program = &cache.program;
    let mut bytes = size_of::<CompiledCache>()
        + size_of_val(&program.op_start[..])
        + size_of_val(&program.op_end[..])
        + program.compute_busy.len() * size_of::<(tsm_topology::TspId, u64)>()
        + size_of_val(program.occupancy.reservations());
    if let Some(a) = &cache.datapath {
        let plan = &a.plan;
        bytes += size_of_val(&plan.shapes[..])
            + size_of_val(&plan.slab[..])
            + size_of_val(&plan.arrivals[..]);
        for chip in &plan.chips {
            bytes += size_of::<crate::cosim::ChipPlan>()
                + size_of_val(&chip.preloads[..])
                + size_of_val(&chip.deliveries[..])
                + size_of_val(&chip.emissions[..]);
        }
        for level in &plan.levels {
            bytes += size_of_val(&level[..]);
        }
        for payloads in &a.payloads {
            bytes += payloads.len() * tsm_isa::vector::VECTOR_BYTES;
        }
    }
    bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tsm_compiler::schedule::CompiledProgram;

    /// A synthetic payload-free resident entry — every one costs the same
    /// estimated bytes, so the proptest can mirror budgets in units of
    /// entries.
    fn synthetic(fp: u64, epoch: u64) -> CompiledCache {
        CompiledCache {
            graph_fp: fp,
            epoch,
            program: CompiledProgram {
                op_start: Vec::new(),
                op_end: Vec::new(),
                span_cycles: 0,
                compute_busy: HashMap::new(),
                comm_busy_cycles: 0,
                occupancy: Default::default(),
            },
            datapath: None,
        }
    }

    /// Reference model: a flat Vec of (key, bytes, last_used) with the
    /// same touch/insert/evict semantics, implemented by full scans.
    #[derive(Default)]
    struct Model {
        entries: Vec<((u64, u64), u64, u64)>,
        seq: u64,
        budget: u64,
        current: Option<(u64, u64)>,
        hits: u64,
        misses: u64,
        evictions: u64,
    }

    impl Model {
        fn total(&self) -> u64 {
            self.entries.iter().map(|e| e.1).sum()
        }

        fn touch(&mut self, key: (u64, u64)) -> bool {
            let hit = self.entries.iter_mut().find(|e| e.0 == key);
            let hit = match hit {
                Some(e) => {
                    e.2 = self.seq;
                    true
                }
                None => false,
            };
            self.seq += 1;
            if hit {
                self.current = Some(key);
                self.hits += 1;
            } else {
                self.misses += 1;
            }
            hit
        }

        fn insert(&mut self, key: (u64, u64), bytes: u64) {
            self.entries.retain(|e| e.0 != key);
            self.entries.push((key, bytes, self.seq));
            self.seq += 1;
            self.current = Some(key);
            self.evict();
        }

        fn evict(&mut self) {
            while self.total() > self.budget && self.entries.len() > 1 {
                let victim = self
                    .entries
                    .iter()
                    .min_by_key(|e| e.2)
                    .map(|e| e.0)
                    .expect("len > 1");
                self.entries.retain(|e| e.0 != victim);
                self.evictions += 1;
                if self.current == Some(victim) {
                    self.current = None;
                }
            }
        }
    }

    /// The manager's byte estimate for a payload-free synthetic entry.
    fn unit_bytes() -> u64 {
        cache_bytes(&synthetic(0, 0))
    }

    proptest! {
        /// Arbitrary touch/insert sequences under arbitrary entry-count
        /// budgets match the reference model exactly: same hit/miss
        /// stream, same resident set, same eviction count, same current
        /// entry. Running the same sequence twice also agrees, which
        /// (together with the model match) pins eviction order as a pure
        /// function of the history — no HashMap-iteration dependence.
        #[test]
        fn manager_matches_reference_model(
            budget_entries in 0u64..6,
            ops in proptest::collection::vec((0u64..8, 0u64..2), 1..64)
        ) {
            let unit = unit_bytes();
            let mut mgr = ResidencyManager::new();
            mgr.set_budget_bytes(budget_entries * unit);
            let mut model = Model { budget: budget_entries * unit, ..Model::default() };

            for (fp, epoch) in ops {
                let key = (fp, epoch);
                let hit = mgr.touch(fp, epoch, false);
                prop_assert_eq!(hit, model.touch(key));
                if !hit {
                    mgr.insert(synthetic(fp, epoch));
                    model.insert(key, unit);
                }
                let resident = mgr.resident();
                let mut want: Vec<(u64, u64)> = model.entries.iter().map(|e| e.0).collect();
                want.sort_unstable();
                let got: Vec<(u64, u64)> = resident.iter().map(|i| (i.graph_fp, i.epoch)).collect();
                prop_assert_eq!(got, want);
                let stats = mgr.stats();
                prop_assert_eq!(
                    (stats.hits, stats.misses, stats.evictions),
                    (model.hits, model.misses, model.evictions)
                );
                prop_assert_eq!(stats.resident_bytes, model.total());
                prop_assert_eq!(
                    mgr.current().map(|c| (c.graph_fp, c.epoch)),
                    model.current
                );
            }
        }
    }

    #[test]
    fn budget_zero_keeps_only_the_current_entry() {
        let mut mgr = ResidencyManager::new();
        mgr.set_budget_bytes(0);
        mgr.insert(synthetic(1, 0));
        mgr.insert(synthetic(2, 0));
        let resident = mgr.resident();
        assert_eq!(resident.len(), 1);
        assert_eq!(resident[0].graph_fp, 2);
        assert_eq!(mgr.stats().evictions, 1);
        // Relaunching graph 1 misses: the single-entry thrash, on demand.
        assert!(!mgr.touch(1, 0, false));
    }

    #[test]
    fn drop_stale_removes_only_older_epochs() {
        let mut mgr = ResidencyManager::new();
        mgr.insert(synthetic(1, 0));
        mgr.insert(synthetic(2, 1));
        mgr.drop_stale(1);
        let resident = mgr.resident();
        assert_eq!(resident.len(), 1);
        assert_eq!((resident[0].graph_fp, resident[0].epoch), (2, 1));
        assert_eq!(mgr.stats().stale_drops, 1);
    }

    #[test]
    fn import_rejects_malformed_and_wrong_version() {
        let mut mgr = ResidencyManager::new();
        assert!(mgr.import_warm("not json").is_err());
        assert!(mgr.import_warm("{\"version\": 2, \"plans\": []}").is_err());
        assert_eq!(mgr.warm_len(), 0);
        assert_eq!(mgr.import_warm("{\"version\": 1, \"plans\": []}"), Ok(0));
    }
}
