//! Persistent deterministic worker pool for the parallel executor.
//!
//! The old engine spawned fresh scoped threads for every hop-depth level,
//! paying thread creation and teardown on the execute-many warm path —
//! the very path the compile-once split exists to keep cheap. This pool
//! creates its workers once (lazily, on the first parallel execution) and
//! reuses them for every subsequent level of every subsequent invocation.
//!
//! Dispatch is epoch/barrier signaling: the caller publishes a borrowed
//! job, bumps the epoch, and blocks until every worker has run the job
//! exactly once. Workers spin briefly on an atomic epoch mirror (a level
//! dispatch is microsecond-scale work; parking would dominate it) before
//! falling back to a condvar wait.
//!
//! Determinism is not the pool's job — it belongs to the callers'
//! sharding contract: a job receives only the worker index, and the
//! executor partitions chips by the plan's compile-time shard keys, so
//! *which* worker runs *what* never depends on scheduling order. The pool
//! guarantees only the barrier: when `dispatch` returns, every effect of
//! the job is visible to the caller (the mutex round-trip orders it).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A borrowed job with its lifetime erased. Sound because the pointer is
/// only dereferenced between `dispatch` entry and exit, and `dispatch`
/// holds the real borrow for that whole window.
type RawJob = *const (dyn Fn(usize) + Sync + 'static);

struct Job(RawJob);

// Safety: see `RawJob` — the pointee outlives every dereference, and the
// pointee is `Sync`, so sharing the pointer across workers is sound.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// Mutex-protected dispatch state.
struct State {
    /// Bumped once per dispatch; workers run each epoch exactly once.
    epoch: u64,
    /// The current epoch's job; `None` between dispatches.
    job: Option<Job>,
    /// Workers still running the current epoch.
    active: usize,
    /// A worker's job panicked this epoch.
    panicked: bool,
    /// Pool is shutting down; workers exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers for a new epoch or shutdown.
    go: Condvar,
    /// Wakes the dispatcher when the last worker finishes.
    done: Condvar,
    /// Lock-free mirror of `State::epoch` for the workers' pre-lock spin.
    epoch_hint: AtomicU64,
}

/// Iterations a worker spins on the epoch mirror before parking. Bounded
/// low: on an oversubscribed machine spinning steals cycles from the
/// workers doing real work.
const SPIN_LIMIT: u32 = 4096;

/// A fixed-width pool of named worker threads, created once and reused
/// across every level of every execution. Dropping the pool joins them.
pub(super) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (at least one).
    pub(super) fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
            epoch_hint: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tsm-cosim-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn cosim worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub(super) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job(w)` once on every worker `w`, returning when all have
    /// finished (the barrier). Re-raises a panic that escaped a job.
    pub(super) fn dispatch(&self, job: &(dyn Fn(usize) + Sync)) {
        let raw = job as *const (dyn Fn(usize) + Sync);
        // Erase the borrow's lifetime; see `RawJob` for why this is sound.
        let raw: RawJob = unsafe { std::mem::transmute(raw) };
        let mut st = self.shared.state.lock().unwrap();
        debug_assert_eq!(st.active, 0, "dispatch while a level is in flight");
        st.job = Some(Job(raw));
        st.active = self.handles.len();
        st.epoch += 1;
        self.shared.epoch_hint.store(st.epoch, Ordering::Release);
        self.shared.go.notify_all();
        while st.active > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        let panicked = std::mem::take(&mut st.panicked);
        drop(st);
        if panicked {
            panic!("cosim worker panicked during level execution");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.go.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, w: usize) {
    let mut seen = 0u64;
    loop {
        // Spin on the lock-free epoch mirror first; a dispatch typically
        // lands well inside the spin window.
        let mut spins = 0u32;
        while shared.epoch_hint.load(Ordering::Acquire) == seen && spins < SPIN_LIMIT {
            std::hint::spin_loop();
            spins += 1;
        }
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.as_ref().expect("job published with epoch").0;
                }
                st = shared.go.wait(st).unwrap();
            }
        };
        // Run outside the lock; contain panics so the barrier still
        // resolves and the dispatcher can re-raise instead of deadlocking.
        let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(w) })).is_ok();
        let mut st = shared.state.lock().unwrap();
        if !ok {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_each_dispatch_exactly_once() {
        let pool = WorkerPool::new(4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..10 {
            pool.dispatch(&|w| {
                counts[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 10);
        }
    }

    #[test]
    fn barrier_makes_worker_writes_visible() {
        let pool = WorkerPool::new(3);
        let mut slots = [0usize; 3];
        // Workers write disjoint slots through a raw pointer, the same
        // pattern the executor uses for its per-chip result slots.
        struct Ptr(*mut usize);
        unsafe impl Send for Ptr {}
        unsafe impl Sync for Ptr {}
        impl Ptr {
            unsafe fn set(&self, i: usize, v: usize) {
                *self.0.add(i) = v;
            }
        }
        let p = Ptr(slots.as_mut_ptr());
        pool.dispatch(&|w| unsafe { p.set(w, w + 7) });
        drop(pool);
        assert_eq!(slots, [7, 8, 9]);
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.dispatch(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_surfaces_at_dispatch() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(&|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool survives a panicked job and keeps dispatching.
        let hits = AtomicUsize::new(0);
        pool.dispatch(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
