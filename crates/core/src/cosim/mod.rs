//! Multi-chip co-simulation: lowering a network schedule to per-TSP chip
//! programs and executing them with real vector payloads.
//!
//! This is the runtime/assembler layer of the paper's software stack
//! (Fig 12): "the scheduled program is passed to the assembler to generate
//! a machine-code binary that is then run on the TSP". Here a scheduled
//! tensor movement becomes, on each participating TSP, a static sequence
//! of `Read`/`Send`/`Receive`/`Write` instructions at exact cycles; the
//! chip executors then *verify* the schedule (no unit conflicts, every
//! RECEIVE preceded by its delivery) while the payload bytes flow through
//! end to end.
//!
//! # Compile once, execute many
//!
//! The engine is a three-stage pipeline:
//!
//! 1. **Plan** ([`plan::compile_plan`]): routing, link scheduling,
//!    lowering and stream-register allocation run once over the transfer
//!    *shapes*, producing a payload-independent, serializable
//!    [`CompiledPlan`]. Payload bytes are referenced symbolically as
//!    `(transfer, vector)` coordinates.
//! 2. **Bind + execute** ([`exec::PlanExecutor`]): each invocation binds a
//!    concrete payload set to the plan by `Arc` handle and replays it;
//!    chip simulators are reset, not rebuilt, between invocations.
//! 3. **Verify** (the private `verify` module): actual C2C emissions and
//!    destination SRAM
//!    are compared bit-for-bit against the plan's promises on every
//!    execution.
//!
//! This mirrors the paper's deployment model — one compiled schedule
//! amortized over many runs (§5, Fig 17) — and makes the amortization
//! measurable: the warm per-invocation cost is the chip passes alone.
//! [`run_transfers`] / [`run_transfers_serial`] remain as one-shot
//! wrappers that compile and execute in a single call.
//!
//! # Single-pass execution
//!
//! Because the network is statically scheduled, every delivery — the cycle
//! a vector lands on a port, and which vector it is — is known before any
//! chip runs. The driver therefore materializes all deliveries directly
//! from the schedule and executes **each chip exactly once**, in ascending
//! hop-depth order (sources first, then first-hop forwarders, …). There is
//! no fixpoint, no event loop and no re-execution: a cluster-wide run
//! costs one pass over the lowered instructions.
//!
//! The schedule's *claim* that an intermediate chip forwards the right
//! bytes at the right cycle is still verified, not assumed: after a chip
//! executes, its actual C2C emissions are compared bit-for-bit against the
//! emissions the schedule promised. A chip that emits the wrong payload,
//! at the wrong cycle, or on the wrong port fails the run with
//! [`CosimError::EmissionMismatch`] before any downstream chip's inputs
//! are trusted; destination SRAM is additionally checked bit-for-bit at
//! the end.
//!
//! # Determinism contract
//!
//! Chips at the same hop depth are independent (their inputs come only
//! from shallower depths), so each depth level executes in parallel on a
//! persistent worker pool (one epoch dispatch per level; workers are
//! created once per executor, and chips map to workers by a shard key
//! fixed at plan-compile time). Parallel and serial runs are
//! **bit-identical**: every chip's execution is a pure function of its
//! program and materialized deliveries, and per-level results are merged
//! in ascending [`TspId`] order regardless of thread completion order —
//! the first error in (depth, TspId) order is the one reported, in both
//! modes.

pub mod exec;
pub mod plan;
mod pool;
mod verify;

pub use exec::{LinkFaultModel, PlanExecutor, TargetedFlip};
pub use plan::{
    compile_plan, ChipPlan, CompiledPlan, PlannedDelivery, PlannedEmission, PlannedPreload,
    TransferShape, VecRef,
};

use std::collections::HashMap;
use std::sync::Arc;
use tsm_chip::exec::{ExecError, Payload};
use tsm_fault::inject::FecStats;
use tsm_isa::vector::MAX_STREAMS;
use tsm_isa::Vector;
use tsm_net::ssn::SsnError;
use tsm_topology::{LinkId, Topology, TopologyError, TspId};
use tsm_trace::RunMetrics;

/// One tensor movement to co-simulate: `data` travels from `from`'s SRAM
/// (slice/offset base) into `to`'s SRAM.
#[derive(Debug, Clone)]
pub struct CosimTransfer {
    /// Source TSP.
    pub from: TspId,
    /// Destination TSP.
    pub to: TspId,
    /// Source SRAM slice.
    pub src_slice: u8,
    /// Source SRAM base offset (vectors laid out contiguously).
    pub src_offset: u16,
    /// Destination SRAM slice.
    pub dst_slice: u8,
    /// Destination SRAM base offset.
    pub dst_offset: u16,
    /// The payload vectors.
    pub data: Vec<Vector>,
}

impl CosimTransfer {
    /// The payload vectors as shared handles, ready to bind to a
    /// [`CompiledPlan`] via [`PlanExecutor::execute`].
    pub fn payload(&self) -> Vec<Payload> {
        self.data.iter().map(|v| Arc::new(v.clone())).collect()
    }
}

/// Errors from co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CosimError {
    /// No route between the endpoints.
    Route(TopologyError),
    /// A transfer's source and destination are the same chip — nothing
    /// crosses the network, so there is nothing to schedule. (Local SRAM
    /// moves are a chip-program concern, not a network transfer.)
    LocalTransfer {
        /// Index of the offending transfer.
        transfer: usize,
    },
    /// The network schedule failed.
    Schedule(SsnError),
    /// A chip rejected its lowered program — a lowering bug by definition.
    Chip {
        /// The offending TSP.
        tsp: TspId,
        /// The executor's verdict.
        error: ExecError,
    },
    /// A chip would need more simultaneously-live stream registers than
    /// the hardware has. The old round-robin allocator silently wrapped
    /// and corrupted data here; exhaustion is now a hard error.
    StreamExhausted {
        /// The overloaded TSP.
        tsp: TspId,
        /// First cycle of the flow that could not be assigned a register.
        cycle: u64,
    },
    /// The number of payload sets bound at execution time does not match
    /// the number of transfers the plan was compiled for.
    PayloadCount {
        /// Transfers in the plan.
        expected: usize,
        /// Payload sets supplied.
        got: usize,
    },
    /// A bound payload set has a different vector count than the shape
    /// its transfer was compiled with.
    PayloadShape {
        /// The offending transfer (index into the plan's shapes).
        transfer: usize,
        /// Vector count the plan was compiled for.
        expected: usize,
        /// Vector count supplied.
        got: usize,
    },
    /// A chip's actual C2C emissions deviated from what the schedule
    /// promised (wrong cycle, port, payload, or count).
    EmissionMismatch {
        /// The offending TSP.
        tsp: TspId,
        /// Cycle of the first divergent emission.
        cycle: u64,
        /// Port of the first divergent emission.
        port: u8,
    },
    /// A destination's SRAM did not end up with the expected payload.
    DataMismatch {
        /// The offending transfer (index into the input slice).
        transfer: usize,
        /// Vector index within the transfer.
        vector: usize,
    },
    /// A delivery crossed a link whose FEC detected a multi-bit error it
    /// could not repair. The payload never reaches the destination chip;
    /// the runtime must replay on known-good hardware (paper §4.5). The
    /// error names the earliest such delivery in (cycle, link, transfer)
    /// order, deterministically, and carries the FEC tally of the aborted
    /// attempt so the runtime's health monitor sees every packet.
    Uncorrectable {
        /// The link whose FEC gave up.
        link: LinkId,
        /// The transfer whose vector was lost (index into the plan).
        transfer: usize,
        /// Scheduled arrival cycle of the lost vector.
        cycle: u64,
        /// Link-layer tally over the whole aborted attempt.
        fec: FecStats,
        /// The link of *every* uncorrectable delivery of the attempt, with
        /// multiplicity, in bind order. Blame voting needs the full set: a
        /// single cross-node culprit implicates both endpoints equally,
        /// and only the victim's additional intra-node casualties break
        /// the tie.
        culprits: Vec<LinkId>,
    },
}

impl std::fmt::Display for CosimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CosimError::Route(e) => write!(f, "route: {e}"),
            CosimError::LocalTransfer { transfer } => {
                write!(
                    f,
                    "transfer {transfer}: source and destination are the same chip"
                )
            }
            CosimError::Schedule(e) => write!(f, "schedule: {e}"),
            CosimError::Chip { tsp, error } => write!(f, "{tsp} rejected program: {error}"),
            CosimError::StreamExhausted { tsp, cycle } => {
                write!(
                    f,
                    "{tsp} needs a {}rd live stream register at cycle {cycle}",
                    MAX_STREAMS + 1
                )
            }
            CosimError::PayloadCount { expected, got } => {
                write!(
                    f,
                    "plan compiled for {expected} transfers, {got} payload sets bound"
                )
            }
            CosimError::PayloadShape {
                transfer,
                expected,
                got,
            } => {
                write!(
                    f,
                    "transfer {transfer}: plan compiled for {expected} vectors, {got} bound"
                )
            }
            CosimError::EmissionMismatch { tsp, cycle, port } => {
                write!(
                    f,
                    "{tsp} emissions deviate from schedule at cycle {cycle}, port {port}"
                )
            }
            CosimError::DataMismatch { transfer, vector } => {
                write!(f, "transfer {transfer}, vector {vector}: payload mismatch")
            }
            CosimError::Uncorrectable {
                link,
                transfer,
                cycle,
                ..
            } => {
                write!(
                    f,
                    "uncorrectable FEC error on link {} (transfer {transfer}, cycle {cycle})",
                    link.0
                )
            }
        }
    }
}

impl std::error::Error for CosimError {}

/// Result of a co-simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimReport {
    /// Cycle at which the last instruction retired, per TSP.
    pub retire_cycles: HashMap<TspId, u64>,
    /// Total instructions lowered across all chips.
    pub instructions: usize,
    /// Per-transfer scheduled arrival cycle of the last vector.
    pub arrivals: Vec<u64>,
    /// Per-transfer digest of the destination SRAM region after the run —
    /// a compact fingerprint of the delivered bytes, used by the
    /// serial-vs-parallel determinism tests.
    pub dst_digests: Vec<u64>,
    /// The run's full metrics snapshot: per-link FEC counters, delivery
    /// and instruction counts, per-chip retirement histogram. The single
    /// source of tally truth — the old standalone `fec` field is now the
    /// [`CosimReport::fec`] view over this.
    pub metrics: RunMetrics,
}

impl CosimReport {
    /// Link-layer FEC tally over every inter-chip delivery, as a view over
    /// [`CosimReport::metrics`]. All-clean in the fault-free mode; in
    /// datapath-BER mode the corrected count is the number of packets
    /// whose single-bit flip was repaired in situ without becoming visible
    /// to any downstream verification. Demoted miscorrections fold into
    /// `uncorrectable`.
    pub fn fec(&self) -> FecStats {
        FecStats::from_metrics(&self.metrics)
    }
}

/// MEM read pipeline latency (must match `Instruction::Read::min_latency`).
pub(crate) const READ_LATENCY: u64 = 5;

/// Chip SRAM slice reserved for forwarding scratch buffers.
pub(crate) const SCRATCH_SLICE: u8 = 80;

/// One-shot co-simulation: compiles the transfers into a [`CompiledPlan`]
/// and executes it once with their payloads, depth levels in parallel.
///
/// Callers that run the same transfer shapes repeatedly should hold on to
/// the plan ([`compile_plan`]) and a [`PlanExecutor`] instead — this
/// wrapper re-compiles on every call.
pub fn run_transfers(
    topo: &Topology,
    transfers: &[CosimTransfer],
) -> Result<CosimReport, CosimError> {
    run_transfers_impl(topo, transfers, true)
}

/// [`run_transfers`] with all chips executed on the calling thread, in
/// ascending (depth, TspId) order. Bit-identical to the parallel engine —
/// the determinism tests and benches compare the two.
pub fn run_transfers_serial(
    topo: &Topology,
    transfers: &[CosimTransfer],
) -> Result<CosimReport, CosimError> {
    run_transfers_impl(topo, transfers, false)
}

fn run_transfers_impl(
    topo: &Topology,
    transfers: &[CosimTransfer],
    parallel: bool,
) -> Result<CosimReport, CosimError> {
    let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
    let plan = compile_plan(topo, &shapes)?;
    let payloads: Vec<Vec<Payload>> = transfers.iter().map(CosimTransfer::payload).collect();
    let mut executor = PlanExecutor::new();
    if parallel {
        executor.execute(&plan, &payloads)
    } else {
        executor.execute_serial(&plan, &payloads)
    }
}

#[cfg(test)]
mod tests {
    use super::plan::StreamAlloc;
    use super::verify::verify_emissions;
    use super::*;
    use tsm_chip::exec::{ChipProgram, ChipSim};
    use tsm_isa::instr::Instruction;
    use tsm_isa::{Direction, StreamId};
    use tsm_net::ssn::vector_slot_cycles;

    fn payload(n: usize, seed: u8) -> Vec<Vector> {
        (0..n)
            .map(|i| Vector::from_fn(|b| (b as u8) ^ seed.wrapping_add(i as u8)))
            .collect()
    }

    #[test]
    fn single_hop_transfer_delivers_bit_exact() {
        let topo = Topology::single_node();
        let tr = CosimTransfer {
            from: TspId(0),
            to: TspId(1),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 4,
            dst_offset: 100,
            data: payload(20, 7),
        };
        let report = run_transfers(&topo, &[tr]).unwrap();
        assert_eq!(report.arrivals.len(), 1);
        assert!(report.instructions >= 20 * 4);
        assert!(report.retire_cycles[&TspId(1)] >= report.arrivals[0]);
    }

    #[test]
    fn two_hop_transfer_forwards_through_intermediate() {
        // Cross-node transfer between TSPs without a direct cable: the
        // intermediate TSP's program receives and re-sends every flit.
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let from = TspId(0);
        // pick a destination with no direct link to TSP 0
        let to = topo
            .tsps()
            .find(|&t| t.node() != from.node() && topo.links_between(from, t).is_empty())
            .expect("some non-adjacent cross-node TSP");
        let tr = CosimTransfer {
            from,
            to,
            src_slice: 1,
            src_offset: 0,
            dst_slice: 2,
            dst_offset: 0,
            data: payload(8, 31),
        };
        let report = run_transfers(&topo, &[tr]).unwrap();
        // three chips participated: source, forwarder, destination
        assert!(
            report.retire_cycles.len() >= 3,
            "{:?}",
            report.retire_cycles
        );
    }

    #[test]
    fn concurrent_transfers_share_the_fabric() {
        let topo = Topology::single_node();
        let transfers: Vec<CosimTransfer> = (0..4u32)
            .map(|i| CosimTransfer {
                from: TspId(i),
                to: TspId(i + 4),
                src_slice: 0,
                src_offset: 0,
                dst_slice: 1,
                dst_offset: 0,
                data: payload(10, i as u8),
            })
            .collect();
        let report = run_transfers(&topo, &transfers).unwrap();
        assert_eq!(report.arrivals.len(), 4);
    }

    #[test]
    fn cosim_is_deterministic() {
        let topo = Topology::single_node();
        let run = || {
            let tr = CosimTransfer {
                from: TspId(2),
                to: TspId(6),
                src_slice: 0,
                src_offset: 0,
                dst_slice: 0,
                dst_offset: 0,
                data: payload(32, 5),
            };
            let r = run_transfers(&topo, &[tr]).unwrap();
            (r.arrivals, r.instructions, r.dst_digests)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn arrival_matches_network_schedule_formula() {
        let topo = Topology::single_node();
        let n = 16u64;
        let tr = CosimTransfer {
            from: TspId(0),
            to: TspId(7),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 0,
            dst_offset: 0,
            data: payload(n as usize, 1),
        };
        let report = run_transfers(&topo, &[tr]).unwrap();
        // schedule starts after the 5-cycle SRAM read pipeline
        assert_eq!(report.arrivals[0], 5 + n * vector_slot_cycles() + 228);
    }

    /// A same-chip transfer is a caller error reported as
    /// [`CosimError::LocalTransfer`], not a panic (the old engine hit a
    /// `debug_assert` here and corrupted state in release builds).
    #[test]
    fn same_chip_transfer_is_a_typed_error() {
        let topo = Topology::single_node();
        let good = CosimTransfer {
            from: TspId(0),
            to: TspId(1),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 1,
            dst_offset: 0,
            data: payload(2, 1),
        };
        let mut local = good.clone();
        local.to = local.from;
        assert_eq!(
            run_transfers(&topo, &[good, local]),
            Err(CosimError::LocalTransfer { transfer: 1 })
        );
    }

    /// Boundary regression: on an idle fabric the first transfer injects at
    /// exactly `READ_LATENCY`, so the first SRAM read lands on cycle 0.
    /// The subtraction must not underflow (debug builds would panic).
    #[test]
    fn first_read_at_cycle_zero_does_not_underflow() {
        let topo = Topology::single_node();
        let tr = CosimTransfer {
            from: TspId(0),
            to: TspId(1),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 1,
            dst_offset: 0,
            data: payload(1, 3),
        };
        let shapes = [TransferShape::from(&tr)];
        let plan = compile_plan(&topo, &shapes).unwrap();
        let src = plan.chips.iter().find(|c| c.tsp == tr.from).unwrap();
        let first_read = plan
            .program(src)
            .iter()
            .find(|ti| matches!(ti.instr, Instruction::Read { .. }))
            .expect("source program reads SRAM");
        assert_eq!(
            first_read.cycle, 0,
            "idle fabric injects at READ_LATENCY exactly"
        );
        let report = PlanExecutor::new().execute(&plan, &[tr.payload()]).unwrap();
        assert_eq!(report.arrivals.len(), 1);
    }

    /// The satellite determinism contract: a multi-node workload produces
    /// a parallel `CosimReport` (retire cycles, arrivals, instruction
    /// count) and destination SRAM bytes identical to a serial run.
    #[test]
    fn parallel_engine_is_bit_identical_to_serial() {
        // Cross-node perfect matching over direct cables: every node-0 TSP
        // streams to a distinct node-1 TSP, so both depth levels hold 8
        // independent chips — real work for the parallel engine.
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let mut taken = std::collections::HashSet::new();
        let transfers: Vec<CosimTransfer> = (0..8u32)
            .map(|i| {
                let from = TspId(i);
                let to = topo
                    .tsps()
                    .find(|&t| {
                        t.node() != from.node()
                            && !taken.contains(&t)
                            && !topo.links_between(from, t).is_empty()
                    })
                    .expect("unused direct cross-node peer");
                taken.insert(to);
                CosimTransfer {
                    from,
                    to,
                    src_slice: 0,
                    src_offset: (i * 64) as u16,
                    dst_slice: 2,
                    dst_offset: (i * 64) as u16,
                    data: payload(12 + i as usize, i as u8),
                }
            })
            .collect();
        let serial = run_transfers_serial(&topo, &transfers).unwrap();
        let parallel = run_transfers(&topo, &transfers).unwrap();
        assert_eq!(serial, parallel);
        // and the parallel engine is reproducible run to run
        assert_eq!(parallel, run_transfers(&topo, &transfers).unwrap());

        // The same contract holds on the explicit plan/executor path with
        // one executor reused across modes.
        let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
        let plan = compile_plan(&topo, &shapes).unwrap();
        let payloads: Vec<Vec<Payload>> = transfers.iter().map(CosimTransfer::payload).collect();
        let mut executor = PlanExecutor::new();
        assert_eq!(executor.execute_serial(&plan, &payloads).unwrap(), serial);
        assert_eq!(executor.execute(&plan, &payloads).unwrap(), serial);
    }

    /// More flows than stream registers, serialized on one cable: liveness
    /// tracking recycles registers, so 40 sequential flows through one
    /// chip succeed bit-exactly (the old modulo-32 allocator would wrap
    /// onto live registers under concurrency instead of recycling dead
    /// ones).
    #[test]
    fn stream_registers_recycle_across_serialized_flows() {
        let topo = Topology::single_node();
        let transfers: Vec<CosimTransfer> = (0..40u32)
            .map(|i| CosimTransfer {
                from: TspId(0),
                to: TspId(1),
                src_slice: 0,
                src_offset: (i * 4) as u16,
                dst_slice: 1,
                dst_offset: (i * 4) as u16,
                data: payload(4, i as u8),
            })
            .collect();
        let report = run_transfers(&topo, &transfers).unwrap();
        assert_eq!(report.arrivals.len(), 40);
    }

    #[test]
    fn stream_exhaustion_is_reported_not_wrapped() {
        let mut a = StreamAlloc::new();
        for _ in 0..MAX_STREAMS {
            assert!(a.alloc(0, 100).is_some());
        }
        // a 33rd simultaneously-live flow has no register
        assert!(a.alloc(50, 60).is_none());
        // but once the live ranges end, registers recycle
        assert_eq!(a.alloc(101, 200), StreamId::new(0).ok());
    }

    /// Executing a plan with payloads that disagree with its compiled
    /// shapes is rejected before any chip runs.
    #[test]
    fn payload_shape_mismatch_is_rejected() {
        let topo = Topology::single_node();
        let tr = CosimTransfer {
            from: TspId(0),
            to: TspId(1),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 1,
            dst_offset: 0,
            data: payload(4, 9),
        };
        let shapes = [TransferShape::from(&tr)];
        let plan = compile_plan(&topo, &shapes).unwrap();
        let mut executor = PlanExecutor::new();
        assert_eq!(
            executor.execute(&plan, &[]),
            Err(CosimError::PayloadCount {
                expected: 1,
                got: 0
            })
        );
        let short: Vec<Payload> = tr.payload().into_iter().take(3).collect();
        assert_eq!(
            executor.execute(&plan, &[short]),
            Err(CosimError::PayloadShape {
                transfer: 0,
                expected: 4,
                got: 3
            })
        );
        // and a matching set still executes cleanly afterwards
        assert!(executor.execute(&plan, &[tr.payload()]).is_ok());
    }

    /// A forged delivery that disagrees with the payload the schedule
    /// promised must surface as an error, not silent corruption.
    #[test]
    fn emission_verification_catches_payload_divergence() {
        let sim_emits = |v: Vector| {
            let mut sim = ChipSim::new();
            sim.preload(0, 0, v);
            let prog = ChipProgram::new()
                .at(
                    0,
                    Instruction::Read {
                        slice: 0,
                        offset: 0,
                        stream: StreamId::new(0).unwrap(),
                        dir: Direction::East,
                    },
                )
                .at(
                    10,
                    Instruction::Send {
                        port: 3,
                        stream: StreamId::new(0).unwrap(),
                    },
                );
            sim.run(&prog).unwrap();
            sim
        };
        let promise = vec![PlannedEmission {
            cycle: 10,
            port: 3,
            vec: VecRef {
                transfer: 0,
                vector: 0,
            },
        }];
        let bound: Vec<Vec<Payload>> = vec![vec![Arc::new(Vector::splat(7))]];
        assert!(verify_emissions(TspId(0), &sim_emits(Vector::splat(7)), &promise, &bound).is_ok());
        assert_eq!(
            verify_emissions(TspId(0), &sim_emits(Vector::splat(8)), &promise, &bound),
            Err(CosimError::EmissionMismatch {
                tsp: TspId(0),
                cycle: 10,
                port: 3
            })
        );
    }
}
