//! Compile stage of the co-simulation pipeline: lowering transfers into a
//! payload-independent, serializable [`CompiledPlan`].
//!
//! A plan captures everything the paper's compiler decides ahead of time —
//! routes, link schedules, per-chip instruction sequences, stream-register
//! assignments, and the full delivery/emission manifest — but references
//! payload bytes only *symbolically*, as `(transfer, vector)` coordinates
//! ([`VecRef`]). Binding actual vectors happens per invocation in the
//! executor, so one compile amortizes over arbitrarily many executions:
//! "the same schedule is reused across runs" (paper §5, Fig 17 runs one
//! BERT schedule 24,240 times).

use std::collections::HashMap;
use tsm_chip::exec::ChipProgram;
use tsm_isa::instr::Instruction;
use tsm_isa::vector::MAX_STREAMS;
use tsm_isa::{Direction, StreamId};
use tsm_net::ssn::{scheduled_link_latency, vector_slot_cycles, LinkOccupancy};
use tsm_topology::route::{shortest_path, Path};
use tsm_topology::{LinkId, Topology, TspId};

use super::{CosimError, CosimTransfer, READ_LATENCY, SCRATCH_SLICE};

/// The payload-independent description of one transfer: endpoints, SRAM
/// layout, and vector count — everything the compiler needs, nothing the
/// payload bytes touch.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TransferShape {
    /// Source TSP.
    pub from: TspId,
    /// Destination TSP.
    pub to: TspId,
    /// Source SRAM slice.
    pub src_slice: u8,
    /// Source SRAM base offset (vectors laid out contiguously).
    pub src_offset: u16,
    /// Destination SRAM slice.
    pub dst_slice: u8,
    /// Destination SRAM base offset.
    pub dst_offset: u16,
    /// Number of vectors the transfer moves.
    pub vectors: u32,
}

impl From<&CosimTransfer> for TransferShape {
    fn from(tr: &CosimTransfer) -> Self {
        TransferShape {
            from: tr.from,
            to: tr.to,
            src_slice: tr.src_slice,
            src_offset: tr.src_offset,
            dst_slice: tr.dst_slice,
            dst_offset: tr.dst_offset,
            vectors: tr.data.len() as u32,
        }
    }
}

/// Symbolic reference to one payload vector: `vector` within `transfer`.
/// The executor resolves it against the payloads bound at invocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct VecRef {
    /// Index into the plan's transfer list.
    pub transfer: u32,
    /// Vector index within that transfer.
    pub vector: u32,
}

/// A source-SRAM preload the runtime performs before execution.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlannedPreload {
    /// SRAM slice.
    pub slice: u8,
    /// SRAM offset.
    pub offset: u16,
    /// Which payload vector lands there.
    pub vec: VecRef,
}

/// A scheduled inbound delivery: `vec` lands on `port` at `cycle`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlannedDelivery {
    /// Local C2C port.
    pub port: u8,
    /// Arrival cycle.
    pub cycle: u64,
    /// Which payload vector arrives.
    pub vec: VecRef,
    /// The physical link the vector crossed to get here — the coordinate
    /// the fault layer uses to look up per-link BER and to blame marginal
    /// hardware when a delivery is uncorrectable.
    pub link: LinkId,
}

/// An emission the schedule promises: the chip sends `vec` out `port` at
/// `cycle`. The executor verifies actual emissions against these.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlannedEmission {
    /// Issue cycle of the SEND.
    pub cycle: u64,
    /// Local C2C port.
    pub port: u8,
    /// Which payload vector is promised.
    pub vec: VecRef,
}

/// Everything one chip needs across every execution of the plan.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChipPlan {
    /// The chip.
    pub tsp: TspId,
    /// Hop depth (0 = pure source); chips execute level by level.
    pub depth: u32,
    /// The chip's static schedule, pre-sorted into issue order so the
    /// executor never clones or re-sorts it.
    pub program: ChipProgram,
    /// Source-SRAM preloads.
    pub preloads: Vec<PlannedPreload>,
    /// Inbound deliveries, sorted by (port, cycle) so the executor can
    /// feed each port queue in order.
    pub deliveries: Vec<PlannedDelivery>,
    /// Promised emissions, sorted by (cycle, port) — the canonical order
    /// emission verification compares in.
    pub emissions: Vec<PlannedEmission>,
}

/// The reusable compile artifact: per-chip programs and manifests plus the
/// level structure and scheduled arrivals. Payload-independent — compile
/// once, execute with as many different payload sets as you like — and
/// serde-serializable, so a plan can be built offline and shipped to the
/// runtime like the paper's machine-code binaries.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompiledPlan {
    /// The transfer shapes the plan was compiled for; execution payloads
    /// must match them exactly.
    pub shapes: Vec<TransferShape>,
    /// Per-chip plans, in ascending [`TspId`] order.
    pub chips: Vec<ChipPlan>,
    /// Hop-depth levels: indices into `chips`. Chips within a level are
    /// mutually independent; levels execute in order.
    pub levels: Vec<Vec<u32>>,
    /// Per-transfer scheduled arrival cycle of the last vector.
    pub arrivals: Vec<u64>,
    /// Total instructions lowered across all chips.
    pub instructions: usize,
}

impl CompiledPlan {
    /// Serializes the plan as pretty-printed JSON (same conventions as
    /// `tsm-compiler::dump`).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes a plan previously produced by [`CompiledPlan::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Flattens the plan's delivery manifest into the profiler's
    /// [`tsm_trace::profile::PlannedTimeline`]: one
    /// [`tsm_trace::profile::PlannedHop`] per
    /// scheduled delivery, with its wire-occupancy window reconstructed
    /// from the schedule's timing model (a delivery at cycle `c` over a
    /// link of latency `L` occupied the wire over `[c - L - slot, c - L)`),
    /// plus each chip's planned execution window.
    ///
    /// This is the compile-time half of the plan-vs-actual join — the
    /// run-time half is the `Delivery` event stream the executor emits.
    pub fn planned_timeline(&self, topo: &Topology) -> tsm_trace::profile::PlannedTimeline {
        use tsm_trace::profile::{PlannedChip, PlannedHop, PlannedTimeline};
        let slot = vector_slot_cycles();
        let mut hops = Vec::new();
        let mut chips = Vec::with_capacity(self.chips.len());
        let mut span = self.arrivals.iter().copied().max().unwrap_or(0);
        for chip in &self.chips {
            for d in &chip.deliveries {
                let latency = scheduled_link_latency(topo, d.link);
                let wire_end = d.cycle.saturating_sub(latency);
                hops.push(PlannedHop {
                    link: d.link.0,
                    transfer: d.vec.transfer,
                    vector: d.vec.vector,
                    cycle: d.cycle,
                    wire_start: wire_end.saturating_sub(slot),
                    wire_end,
                    dest_lane: chip.tsp.0,
                });
            }
            let instrs = chip.program.instrs();
            let start = instrs.first().map_or(0, |i| i.cycle);
            let end = instrs.last().map_or(0, |i| i.cycle);
            span = span.max(end);
            chips.push(PlannedChip {
                lane: chip.tsp.0,
                start,
                end,
                instructions: instrs.len() as u32,
            });
        }
        hops.sort_by_key(|h| (h.link, h.wire_start, h.transfer, h.vector));
        PlannedTimeline {
            hops,
            chips,
            span,
            arrivals: self.arrivals.clone(),
        }
    }
}

/// Allocates `vectors` scratch offsets on `tsp`.
fn scratch_base(next: &mut HashMap<TspId, u16>, tsp: TspId, vectors: u16) -> u16 {
    let e = next.entry(tsp).or_insert(0);
    let base = *e;
    *e += vectors;
    base
}

/// Per-chip stream-register allocator with liveness tracking.
///
/// A flow reserves the lowest-numbered register that is dead over its
/// whole `[start, end]` live range; the register is recycled once the
/// range has passed. Exhaustion (more than [`MAX_STREAMS`] simultaneously
/// live flows through one chip) is reported to the caller instead of
/// silently aliasing a live register, which is what the old modulo-32
/// round-robin did.
#[derive(Debug, Clone)]
pub(super) struct StreamAlloc {
    /// `live_until[s]` = last cycle on which stream `s` still carries a
    /// live value, or `None` if it was never used.
    live_until: [Option<u64>; MAX_STREAMS],
}

impl StreamAlloc {
    pub(super) fn new() -> Self {
        StreamAlloc {
            live_until: [None; MAX_STREAMS],
        }
    }

    /// Reserves the lowest-numbered stream free over `[start, end]`. A
    /// stream is free only if its previous live range ended *strictly*
    /// before `start` (a same-cycle read/write handoff would be
    /// order-dependent, so it is not allowed).
    pub(super) fn alloc(&mut self, start: u64, end: u64) -> Option<StreamId> {
        debug_assert!(start <= end);
        for (s, slot) in self.live_until.iter_mut().enumerate() {
            match *slot {
                Some(until) if until >= start => continue,
                _ => {
                    *slot = Some(end);
                    return Some(StreamId::new(s as u8).expect("stream id in range"));
                }
            }
        }
        None
    }
}

fn alloc_stream(
    allocs: &mut HashMap<TspId, StreamAlloc>,
    tsp: TspId,
    start: u64,
    end: u64,
) -> Result<StreamId, CosimError> {
    allocs
        .entry(tsp)
        .or_insert_with(StreamAlloc::new)
        .alloc(start, end)
        .ok_or(CosimError::StreamExhausted { tsp, cycle: start })
}

/// Compiles transfer shapes into a [`CompiledPlan`]: routes each transfer
/// onto a minimal path, reserves conflict-free link slots, lowers per-TSP
/// chip programs (pre-sorted into issue order), assigns stream registers,
/// and materializes the full symbolic delivery/emission manifest. No
/// payload bytes are consulted; the result is reusable across executions.
pub fn compile_plan(topo: &Topology, shapes: &[TransferShape]) -> Result<CompiledPlan, CosimError> {
    let slot = vector_slot_cycles();
    let mut occupancy = LinkOccupancy::new();
    let mut programs: HashMap<TspId, ChipProgram> = HashMap::new();
    let mut preloads: HashMap<TspId, Vec<PlannedPreload>> = HashMap::new();
    let mut deliveries: HashMap<TspId, Vec<PlannedDelivery>> = HashMap::new();
    // What the schedule promises each chip will emit.
    let mut emissions: HashMap<TspId, Vec<PlannedEmission>> = HashMap::new();
    // Hop depth of each participating chip (max position over its paths).
    let mut depth: HashMap<TspId, usize> = HashMap::new();
    // Each (from, to) route is computed once and reused across transfers.
    let mut routes: HashMap<(TspId, TspId), Path> = HashMap::new();
    let mut streams: HashMap<TspId, StreamAlloc> = HashMap::new();
    // Forwarding scratch space, bump-allocated per chip.
    let mut scratch_next: HashMap<TspId, u16> = HashMap::new();
    let mut arrivals = Vec::with_capacity(shapes.len());

    for (idx, tr) in shapes.iter().enumerate() {
        let path = match routes.entry((tr.from, tr.to)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(shortest_path(topo, tr.from, tr.to).map_err(CosimError::Route)?)
            }
        };
        if path.links.is_empty() {
            // from == to: nothing crosses the network. The old engine hit
            // a debug assertion here; it is a caller error, reported as one.
            return Err(CosimError::LocalTransfer { transfer: idx });
        }
        let n = tr.vectors as u64;
        // Injection starts after the source's SRAM read pipeline has had
        // time to stage the first vector.
        let sched = occupancy
            .schedule_transfer(topo, path, n, READ_LATENCY)
            .map_err(CosimError::Schedule)?;
        arrivals.push(sched.last_arrival);
        if n == 0 {
            continue;
        }
        // Per-hop block starts come straight off the schedule.
        let hop_starts = &sched.hop_starts;
        debug_assert_eq!(hop_starts.len(), path.links.len());

        let vref = |v: u64| VecRef {
            transfer: idx as u32,
            vector: v as u32,
        };

        for (h, &tsp) in path.tsps.iter().enumerate() {
            let d = depth.entry(tsp).or_insert(0);
            *d = (*d).max(h);
        }

        // Preload the source SRAM with the payload.
        let src_pre = preloads.entry(tr.from).or_default();
        for v in 0..n {
            src_pre.push(PlannedPreload {
                slice: tr.src_slice,
                offset: tr.src_offset + v as u16,
                vec: vref(v),
            });
        }

        // Source program: Read -> Send per vector. The schedule is asked
        // for an injection no earlier than READ_LATENCY, so the first read
        // lands at cycle >= 0; `saturating_sub` makes the subtraction
        // well-defined even at the boundary where send0 == READ_LATENCY.
        let send0 = hop_starts[0];
        debug_assert!(
            send0 >= READ_LATENCY,
            "schedule injected before the SRAM read pipeline could stage a vector"
        );
        let read0 = send0.saturating_sub(READ_LATENCY);
        let src_stream = alloc_stream(&mut streams, tr.from, read0, send0 + (n - 1) * slot)?;
        let src_port = port_of(topo, path, 0, tr.from);
        let prog = programs.entry(tr.from).or_default();
        for v in 0..n {
            prog.push(
                read0 + v * slot,
                Instruction::Read {
                    slice: tr.src_slice,
                    offset: tr.src_offset + v as u16,
                    stream: src_stream,
                    dir: Direction::East,
                },
            );
            prog.push(
                send0 + v * slot,
                Instruction::Send {
                    port: src_port,
                    stream: src_stream,
                },
            );
        }

        // Intermediate hops: Receive -> Write -> Read -> Send. The vector
        // must be staged in local SRAM between arrival and forwarding
        // ("we use the local SRAM storage on each TSP to provide
        // intermediate buffering", §2.3) — a stream register alone would
        // be overwritten by the next arriving flit long before the
        // 398-cycle forwarding point. This staging is exactly what the
        // per-hop overhead pays for.
        for h in 1..path.links.len() {
            let tsp = path.tsps[h];
            let in_port = port_of(topo, path, h - 1, tsp);
            let out_port = port_of(topo, path, h, tsp);
            let in_latency = scheduled_link_latency(topo, path.links[h - 1]);
            let arrive0 = hop_starts[h - 1] + slot + in_latency;
            let forward0 = hop_starts[h];
            debug_assert!(
                forward0 >= READ_LATENCY,
                "forwarding hop scheduled before the SRAM read pipeline"
            );
            let fread0 = forward0.saturating_sub(READ_LATENCY);
            let in_stream = alloc_stream(&mut streams, tsp, arrive0, arrive0 + (n - 1) * slot + 1)?;
            let out_stream = alloc_stream(&mut streams, tsp, fread0, forward0 + (n - 1) * slot)?;
            let scratch = scratch_base(&mut scratch_next, tsp, n as u16);
            let prog = programs.entry(tsp).or_default();
            for v in 0..n {
                let arrive = arrive0 + v * slot;
                let forward = forward0 + v * slot;
                debug_assert!(forward > arrive + 1 + READ_LATENCY);
                prog.push(
                    arrive,
                    Instruction::Receive {
                        port: in_port,
                        stream: in_stream,
                    },
                );
                prog.push(
                    arrive + 1,
                    Instruction::Write {
                        slice: SCRATCH_SLICE,
                        offset: scratch + v as u16,
                        stream: in_stream,
                    },
                );
                prog.push(
                    fread0 + v * slot,
                    Instruction::Read {
                        slice: SCRATCH_SLICE,
                        offset: scratch + v as u16,
                        stream: out_stream,
                        dir: Direction::East,
                    },
                );
                prog.push(
                    forward,
                    Instruction::Send {
                        port: out_port,
                        stream: out_stream,
                    },
                );
            }
        }

        // Destination: Receive -> Write.
        let last = path.links.len() - 1;
        let dst_port = port_of(topo, path, last, tr.to);
        let out_latency = scheduled_link_latency(topo, path.links[last]);
        let dst_arrive0 = hop_starts[last] + slot + out_latency;
        let dst_stream = alloc_stream(
            &mut streams,
            tr.to,
            dst_arrive0,
            dst_arrive0 + (n - 1) * slot + 1,
        )?;
        let prog = programs.entry(tr.to).or_default();
        for v in 0..n {
            let arrive = dst_arrive0 + v * slot;
            prog.push(
                arrive,
                Instruction::Receive {
                    port: dst_port,
                    stream: dst_stream,
                },
            );
            prog.push(
                arrive + 1,
                Instruction::Write {
                    slice: tr.dst_slice,
                    offset: tr.dst_offset + v as u16,
                    stream: dst_stream,
                },
            );
        }

        // Materialize every delivery and every promised emission straight
        // from the schedule: the O(1) topology port index maps each
        // sending port to its (link, peer, peer port) once per hop.
        for (h, &hop_start) in hop_starts.iter().enumerate().take(path.links.len()) {
            let sender = path.tsps[h];
            let out_port = port_of(topo, path, h, sender);
            let (link, peer, peer_port) = topo
                .port_peer(sender, out_port)
                .expect("scheduled port is wired");
            debug_assert_eq!(link, path.links[h]);
            debug_assert_eq!(peer, path.tsps[h + 1]);
            let latency = scheduled_link_latency(topo, path.links[h]);
            let promised = emissions.entry(sender).or_default();
            for v in 0..n {
                promised.push(PlannedEmission {
                    cycle: hop_start + v * slot,
                    port: out_port,
                    vec: vref(v),
                });
            }
            let inbox = deliveries.entry(peer).or_default();
            for v in 0..n {
                inbox.push(PlannedDelivery {
                    port: peer_port,
                    cycle: hop_start + (v + 1) * slot + latency,
                    vec: vref(v),
                    link,
                });
            }
        }
    }

    // Assemble per-chip plans in ascending TspId order and group them into
    // hop-depth levels: a chip at depth d receives only from chips at
    // depth < d, so levels execute in topological order and chips within a
    // level are mutually independent.
    let mut tsps: Vec<TspId> = programs.keys().copied().collect();
    tsps.sort();
    let mut chips = Vec::with_capacity(tsps.len());
    let mut levels: Vec<Vec<u32>> = Vec::new();
    let mut instructions = 0usize;
    for (i, &tsp) in tsps.iter().enumerate() {
        let d = depth[&tsp];
        if levels.len() <= d {
            levels.resize(d + 1, Vec::new());
        }
        levels[d].push(i as u32);
        let mut program = programs
            .remove(&tsp)
            .expect("program exists for listed chip");
        // Issue-sort once at compile time; every execution then runs the
        // program without cloning or re-sorting it.
        program.sort_in_place();
        instructions += program.len();
        let mut dels = deliveries.remove(&tsp).unwrap_or_default();
        // Stable (port, cycle) order: each port's queue is fed
        // nondecreasing, and equal keys keep transfer order — consumption
        // order is identical to the legacy per-delivery re-sort.
        dels.sort_by_key(|d| (d.port, d.cycle));
        let mut emis = emissions.remove(&tsp).unwrap_or_default();
        emis.sort_by_key(|e| (e.cycle, e.port));
        chips.push(ChipPlan {
            tsp,
            depth: d as u32,
            program,
            preloads: preloads.remove(&tsp).unwrap_or_default(),
            deliveries: dels,
            emissions: emis,
        });
    }

    Ok(CompiledPlan {
        shapes: shapes.to_vec(),
        chips,
        levels,
        arrivals,
        instructions,
    })
}

/// The port number `tsp` uses on hop `h`'s link.
fn port_of(topo: &Topology, path: &Path, h: usize, tsp: TspId) -> u8 {
    let l = topo.link(path.links[h]);
    if l.a == tsp {
        l.a_port
    } else {
        debug_assert_eq!(l.b, tsp);
        l.b_port
    }
}
