//! Compile stage of the co-simulation pipeline: lowering transfers into a
//! payload-independent, serializable [`CompiledPlan`].
//!
//! A plan captures everything the paper's compiler decides ahead of time —
//! routes, link schedules, per-chip instruction sequences, stream-register
//! assignments, and the full delivery/emission manifest — but references
//! payload bytes only *symbolically*, as `(transfer, vector)` coordinates
//! ([`VecRef`]). Binding actual vectors happens per invocation in the
//! executor, so one compile amortizes over arbitrarily many executions:
//! "the same schedule is reused across runs" (paper §5, Fig 17 runs one
//! BERT schedule 24,240 times).

use std::collections::HashMap;
use tsm_chip::exec::{ChipProgram, TimedInstruction};
use tsm_isa::instr::Instruction;
use tsm_isa::vector::MAX_STREAMS;
use tsm_isa::{Direction, StreamId};
use tsm_net::ssn::{scheduled_link_latency, vector_slot_cycles, LinkOccupancy};
use tsm_topology::route::{shortest_path, Path};
use tsm_topology::{LinkId, Topology, TspId};

use super::{CosimError, CosimTransfer, READ_LATENCY, SCRATCH_SLICE};

/// The payload-independent description of one transfer: endpoints, SRAM
/// layout, and vector count — everything the compiler needs, nothing the
/// payload bytes touch.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TransferShape {
    /// Source TSP.
    pub from: TspId,
    /// Destination TSP.
    pub to: TspId,
    /// Source SRAM slice.
    pub src_slice: u8,
    /// Source SRAM base offset (vectors laid out contiguously).
    pub src_offset: u16,
    /// Destination SRAM slice.
    pub dst_slice: u8,
    /// Destination SRAM base offset.
    pub dst_offset: u16,
    /// Number of vectors the transfer moves.
    pub vectors: u32,
}

impl From<&CosimTransfer> for TransferShape {
    fn from(tr: &CosimTransfer) -> Self {
        TransferShape {
            from: tr.from,
            to: tr.to,
            src_slice: tr.src_slice,
            src_offset: tr.src_offset,
            dst_slice: tr.dst_slice,
            dst_offset: tr.dst_offset,
            vectors: tr.data.len() as u32,
        }
    }
}

/// Symbolic reference to one payload vector: `vector` within `transfer`.
/// The executor resolves it against the payloads bound at invocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct VecRef {
    /// Index into the plan's transfer list.
    pub transfer: u32,
    /// Vector index within that transfer.
    pub vector: u32,
}

/// A source-SRAM preload the runtime performs before execution.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlannedPreload {
    /// SRAM slice.
    pub slice: u8,
    /// SRAM offset.
    pub offset: u16,
    /// Which payload vector lands there.
    pub vec: VecRef,
}

/// A scheduled inbound delivery: `vec` lands on `port` at `cycle`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlannedDelivery {
    /// Local C2C port.
    pub port: u8,
    /// Arrival cycle.
    pub cycle: u64,
    /// Which payload vector arrives.
    pub vec: VecRef,
    /// The physical link the vector crossed to get here — the coordinate
    /// the fault layer uses to look up per-link BER and to blame marginal
    /// hardware when a delivery is uncorrectable.
    pub link: LinkId,
}

/// An emission the schedule promises: the chip sends `vec` out `port` at
/// `cycle`. The executor verifies actual emissions against these.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlannedEmission {
    /// Issue cycle of the SEND.
    pub cycle: u64,
    /// Local C2C port.
    pub port: u8,
    /// Which payload vector is promised.
    pub vec: VecRef,
}

/// Everything one chip needs across every execution of the plan.
///
/// The instruction stream itself lives in the plan's contiguous
/// [`CompiledPlan::slab`]; each chip holds only its `[prog_start,
/// prog_end)` window — resolve it with [`CompiledPlan::program`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChipPlan {
    /// The chip.
    pub tsp: TspId,
    /// Hop depth (0 = pure source); chips execute level by level.
    pub depth: u32,
    /// Stable shard key (FNV-1a over the TSP id), fixed at compile time.
    /// The parallel executor assigns this chip to worker
    /// `shard % workers`, so the chip→worker mapping is a pure function
    /// of the plan and the thread count — never of scheduling order.
    pub shard: u32,
    /// Start of this chip's issue-sorted instruction window in the slab.
    pub prog_start: u32,
    /// End (exclusive) of the instruction window.
    pub prog_end: u32,
    /// Source-SRAM preloads.
    pub preloads: Vec<PlannedPreload>,
    /// Inbound deliveries, sorted by (port, cycle) so the executor can
    /// feed each port queue in order.
    pub deliveries: Vec<PlannedDelivery>,
    /// Promised emissions, sorted by (cycle, port) — the canonical order
    /// emission verification compares in.
    pub emissions: Vec<PlannedEmission>,
}

/// The reusable compile artifact: per-chip manifests, one contiguous
/// instruction slab, the level structure, and scheduled arrivals.
/// Payload-independent — compile once, execute with as many different
/// payload sets as you like — and JSON-serializable, so a plan can be
/// built offline and shipped to the runtime like the paper's machine-code
/// binaries.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompiledPlan {
    /// The transfer shapes the plan was compiled for; execution payloads
    /// must match them exactly.
    pub shapes: Vec<TransferShape>,
    /// Per-chip plans, in ascending [`TspId`] order.
    pub chips: Vec<ChipPlan>,
    /// Every chip's issue-sorted instruction stream, laid out
    /// back-to-back in chip order. One allocation for the whole plan:
    /// executing a level walks this slab linearly instead of chasing one
    /// heap vector per chip.
    pub slab: Vec<TimedInstruction>,
    /// Hop-depth levels: indices into `chips`. Chips within a level are
    /// mutually independent; levels execute in order.
    pub levels: Vec<Vec<u32>>,
    /// Per-transfer scheduled arrival cycle of the last vector.
    pub arrivals: Vec<u64>,
    /// Total instructions lowered across all chips.
    pub instructions: usize,
}

/// Stable chip→shard key: FNV-1a over the little-endian TSP id, folded to
/// 32 bits. Fixed here, at compile time, so a plan pins its own sharding.
pub(super) fn shard_key(tsp: TspId) -> u32 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tsp.0.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

impl CompiledPlan {
    /// The issue-sorted instruction stream of `chip` (its window into the
    /// plan's contiguous slab).
    pub fn program<'a>(&'a self, chip: &ChipPlan) -> &'a [TimedInstruction] {
        &self.slab[chip.prog_start as usize..chip.prog_end as usize]
    }

    /// Serializes the plan as pretty-printed JSON (same conventions as
    /// `tsm-compiler::dump`: hand-rolled emitter, fixed field order,
    /// strings escaped through [`tsm_trace::escape_json`]).
    pub fn to_json(&self) -> String {
        json::emit(self)
    }

    /// Deserializes a plan previously produced by [`CompiledPlan::to_json`].
    /// Field order is not significant; unknown keys and malformed
    /// instructions are rejected with a descriptive error.
    pub fn from_json(s: &str) -> Result<Self, String> {
        json::parse(s)
    }

    /// Flattens the plan's delivery manifest into the profiler's
    /// [`tsm_trace::profile::PlannedTimeline`]: one
    /// [`tsm_trace::profile::PlannedHop`] per
    /// scheduled delivery, with its wire-occupancy window reconstructed
    /// from the schedule's timing model (a delivery at cycle `c` over a
    /// link of latency `L` occupied the wire over `[c - L - slot, c - L)`),
    /// plus each chip's planned execution window.
    ///
    /// This is the compile-time half of the plan-vs-actual join — the
    /// run-time half is the `Delivery` event stream the executor emits.
    pub fn planned_timeline(&self, topo: &Topology) -> tsm_trace::profile::PlannedTimeline {
        use tsm_trace::profile::{PlannedChip, PlannedHop, PlannedTimeline};
        let slot = vector_slot_cycles();
        let mut hops = Vec::new();
        let mut chips = Vec::with_capacity(self.chips.len());
        let mut span = self.arrivals.iter().copied().max().unwrap_or(0);
        for chip in &self.chips {
            for d in &chip.deliveries {
                let latency = scheduled_link_latency(topo, d.link);
                let wire_end = d.cycle.saturating_sub(latency);
                hops.push(PlannedHop {
                    link: d.link.0,
                    transfer: d.vec.transfer,
                    vector: d.vec.vector,
                    cycle: d.cycle,
                    wire_start: wire_end.saturating_sub(slot),
                    wire_end,
                    dest_lane: chip.tsp.0,
                });
            }
            let instrs = self.program(chip);
            let start = instrs.first().map_or(0, |i| i.cycle);
            let end = instrs.last().map_or(0, |i| i.cycle);
            span = span.max(end);
            chips.push(PlannedChip {
                lane: chip.tsp.0,
                start,
                end,
                instructions: instrs.len() as u32,
            });
        }
        hops.sort_by_key(|h| (h.link, h.wire_start, h.transfer, h.vector));
        PlannedTimeline {
            hops,
            chips,
            span,
            arrivals: self.arrivals.clone(),
        }
    }
}

/// Allocates `vectors` scratch offsets on `tsp`.
fn scratch_base(next: &mut HashMap<TspId, u16>, tsp: TspId, vectors: u16) -> u16 {
    let e = next.entry(tsp).or_insert(0);
    let base = *e;
    *e += vectors;
    base
}

/// Per-chip stream-register allocator with liveness tracking.
///
/// A flow reserves the lowest-numbered register that is dead over its
/// whole `[start, end]` live range; the register is recycled once the
/// range has passed. Exhaustion (more than [`MAX_STREAMS`] simultaneously
/// live flows through one chip) is reported to the caller instead of
/// silently aliasing a live register, which is what the old modulo-32
/// round-robin did.
#[derive(Debug, Clone)]
pub(super) struct StreamAlloc {
    /// `live_until[s]` = last cycle on which stream `s` still carries a
    /// live value, or `None` if it was never used.
    live_until: [Option<u64>; MAX_STREAMS],
}

impl StreamAlloc {
    pub(super) fn new() -> Self {
        StreamAlloc {
            live_until: [None; MAX_STREAMS],
        }
    }

    /// Reserves the lowest-numbered stream free over `[start, end]`. A
    /// stream is free only if its previous live range ended *strictly*
    /// before `start` (a same-cycle read/write handoff would be
    /// order-dependent, so it is not allowed).
    pub(super) fn alloc(&mut self, start: u64, end: u64) -> Option<StreamId> {
        debug_assert!(start <= end);
        for (s, slot) in self.live_until.iter_mut().enumerate() {
            match *slot {
                Some(until) if until >= start => continue,
                _ => {
                    *slot = Some(end);
                    return Some(StreamId::new(s as u8).expect("stream id in range"));
                }
            }
        }
        None
    }
}

fn alloc_stream(
    allocs: &mut HashMap<TspId, StreamAlloc>,
    tsp: TspId,
    start: u64,
    end: u64,
) -> Result<StreamId, CosimError> {
    allocs
        .entry(tsp)
        .or_insert_with(StreamAlloc::new)
        .alloc(start, end)
        .ok_or(CosimError::StreamExhausted { tsp, cycle: start })
}

/// Chip execution-unit occupancy — the compile-time mirror of the busy
/// model `ChipSim` enforces at run time: each instruction holds resource
/// `(unit, port)` for `[cycle, cycle + min_latency)`, where C2C
/// instructions occupy one port engine each and every other unit is a
/// single resource. Link occupancy alone cannot serialize flows that
/// cross at a *chip* (two flows on disjoint links can collide at a shared
/// forwarder's Mem unit), so [`compile_plan`] trial-schedules every
/// transfer against this table and delays its injection until the whole
/// chip-side window is free.
#[derive(Debug, Default)]
struct UnitOccupancy {
    /// Sorted, disjoint busy windows `[start, end)` per chip resource.
    busy: HashMap<(TspId, u16), Vec<(u64, u64)>>,
}

impl UnitOccupancy {
    /// Resource key for an instruction, matching the executor: C2C
    /// engines are per-port, every other unit is one resource.
    fn key(instr: &Instruction) -> u16 {
        let port = match instr {
            Instruction::Transmit { port }
            | Instruction::Receive { port, .. }
            | Instruction::Send { port, .. } => *port,
            _ => 0,
        };
        ((instr.unit().index() as u16) << 8) | u16::from(port)
    }

    /// If `[start, end)` overlaps a booked window on `tsp`'s resource,
    /// returns the end of the latest overlapping window (the cycle the
    /// caller must delay past).
    fn conflict(&self, tsp: TspId, key: u16, start: u64, end: u64) -> Option<u64> {
        let windows = self.busy.get(&(tsp, key))?;
        // Windows are sorted and disjoint, so both starts and ends are
        // ascending: skip every window ending at or before `start`, then
        // scan while windows begin before `end`.
        let i = windows.partition_point(|&(_, e)| e <= start);
        let mut busy_until = None;
        for &(s, e) in &windows[i..] {
            if s >= end {
                break;
            }
            busy_until = Some(e);
        }
        busy_until
    }

    /// Books `[start, end)` on `tsp`'s resource.
    fn reserve(&mut self, tsp: TspId, key: u16, start: u64, end: u64) {
        let windows = self.busy.entry((tsp, key)).or_default();
        let i = windows.partition_point(|&(s, _)| s < start);
        windows.insert(i, (start, end));
    }
}

/// Enumerates every chip-unit busy window the lowering in [`compile_plan`]
/// will create for a transfer whose hops start at `hop_starts`, calling
/// `f(tsp, resource, start, end)` once per planned instruction. Kept in
/// lockstep with the program-construction loops below — both walk the
/// same source Read→Send, forwarder Receive→Write→Read→Send, and
/// destination Receive→Write timing.
fn for_each_unit_window(
    topo: &Topology,
    path: &Path,
    hop_starts: &[u64],
    n: u64,
    f: &mut impl FnMut(TspId, u16, u64, u64),
) {
    let slot = vector_slot_cycles();
    let dummy = StreamId::new(0).expect("stream 0 exists");
    let read = Instruction::Read {
        slice: 0,
        offset: 0,
        stream: dummy,
        dir: Direction::East,
    };
    let mem_key = UnitOccupancy::key(&read);
    let read_lat = read.min_latency();
    let write_lat = Instruction::Write {
        slice: 0,
        offset: 0,
        stream: dummy,
    }
    .min_latency();
    let c2c_lat = Instruction::Send {
        port: 0,
        stream: dummy,
    }
    .min_latency();
    let c2c_key = |port: u8| {
        UnitOccupancy::key(&Instruction::Send {
            port,
            stream: dummy,
        })
    };

    // Source: Read -> Send per vector.
    let src = path.tsps[0];
    let send0 = hop_starts[0];
    let read0 = send0.saturating_sub(READ_LATENCY);
    let src_key = c2c_key(port_of(topo, path, 0, src));
    for v in 0..n {
        f(src, mem_key, read0 + v * slot, read0 + v * slot + read_lat);
        f(src, src_key, send0 + v * slot, send0 + v * slot + c2c_lat);
    }

    // Intermediate hops: Receive -> Write -> Read -> Send per vector.
    for h in 1..path.links.len() {
        let tsp = path.tsps[h];
        let in_key = c2c_key(port_of(topo, path, h - 1, tsp));
        let out_key = c2c_key(port_of(topo, path, h, tsp));
        let in_latency = scheduled_link_latency(topo, path.links[h - 1]);
        let arrive0 = hop_starts[h - 1] + slot + in_latency;
        let forward0 = hop_starts[h];
        let fread0 = forward0.saturating_sub(READ_LATENCY);
        for v in 0..n {
            let arrive = arrive0 + v * slot;
            let forward = forward0 + v * slot;
            f(tsp, in_key, arrive, arrive + c2c_lat);
            f(tsp, mem_key, arrive + 1, arrive + 1 + write_lat);
            f(
                tsp,
                mem_key,
                fread0 + v * slot,
                fread0 + v * slot + read_lat,
            );
            f(tsp, out_key, forward, forward + c2c_lat);
        }
    }

    // Destination: Receive -> Write per vector.
    let last = path.links.len() - 1;
    let dst = path.tsps[last + 1];
    let dst_key = c2c_key(port_of(topo, path, last, dst));
    let out_latency = scheduled_link_latency(topo, path.links[last]);
    let dst_arrive0 = hop_starts[last] + slot + out_latency;
    for v in 0..n {
        let arrive = dst_arrive0 + v * slot;
        f(dst, dst_key, arrive, arrive + c2c_lat);
        f(dst, mem_key, arrive + 1, arrive + 1 + write_lat);
    }
}

/// Compiles transfer shapes into a [`CompiledPlan`]: routes each transfer
/// onto a minimal path, reserves conflict-free link slots, lowers per-TSP
/// chip programs (pre-sorted into issue order), assigns stream registers,
/// and materializes the full symbolic delivery/emission manifest. No
/// payload bytes are consulted; the result is reusable across executions.
pub fn compile_plan(topo: &Topology, shapes: &[TransferShape]) -> Result<CompiledPlan, CosimError> {
    let slot = vector_slot_cycles();
    let mut occupancy = LinkOccupancy::new();
    let mut units = UnitOccupancy::default();
    let mut programs: HashMap<TspId, ChipProgram> = HashMap::new();
    let mut preloads: HashMap<TspId, Vec<PlannedPreload>> = HashMap::new();
    let mut deliveries: HashMap<TspId, Vec<PlannedDelivery>> = HashMap::new();
    // What the schedule promises each chip will emit.
    let mut emissions: HashMap<TspId, Vec<PlannedEmission>> = HashMap::new();
    // Hop depth of each participating chip (max position over its paths).
    let mut depth: HashMap<TspId, usize> = HashMap::new();
    // Each (from, to) route is computed once and reused across transfers.
    let mut routes: HashMap<(TspId, TspId), Path> = HashMap::new();
    let mut streams: HashMap<TspId, StreamAlloc> = HashMap::new();
    // Forwarding scratch space, bump-allocated per chip.
    let mut scratch_next: HashMap<TspId, u16> = HashMap::new();
    let mut arrivals = Vec::with_capacity(shapes.len());

    for (idx, tr) in shapes.iter().enumerate() {
        let path = match routes.entry((tr.from, tr.to)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(shortest_path(topo, tr.from, tr.to).map_err(CosimError::Route)?)
            }
        };
        if path.links.is_empty() {
            // from == to: nothing crosses the network. The old engine hit
            // a debug assertion here; it is a caller error, reported as one.
            return Err(CosimError::LocalTransfer { transfer: idx });
        }
        let n = tr.vectors as u64;
        // Injection starts after the source's SRAM read pipeline has had
        // time to stage the first vector, and is delayed further until
        // every chip execution unit the transfer touches is free for its
        // whole window: link reservations alone cannot serialize flows
        // that cross at a chip, so each transfer is trial-scheduled
        // against the unit occupancy and retried later until its plan is
        // conflict-free at the chips as well as on the wires.
        let mut earliest = READ_LATENCY;
        let sched = loop {
            let trial = occupancy
                .plan_transfer(topo, path, n, earliest)
                .map_err(CosimError::Schedule)?;
            let mut bump = 0u64;
            if n > 0 {
                for_each_unit_window(topo, path, &trial.hop_starts, n, &mut |tsp, key, s, e| {
                    if let Some(busy_until) = units.conflict(tsp, key, s, e) {
                        bump = bump.max(busy_until - s);
                    }
                });
            }
            if bump == 0 {
                break trial;
            }
            // Monotone progress: each retry pushes the injection at least
            // one cycle past the latest conflicting window, and every
            // booked window ends at a finite cycle, so the loop terminates.
            earliest += bump;
        };
        occupancy.commit(path, &sched);
        arrivals.push(sched.last_arrival);
        if n == 0 {
            continue;
        }
        for_each_unit_window(topo, path, &sched.hop_starts, n, &mut |tsp, key, s, e| {
            units.reserve(tsp, key, s, e);
        });
        // Per-hop block starts come straight off the schedule.
        let hop_starts = &sched.hop_starts;
        debug_assert_eq!(hop_starts.len(), path.links.len());

        let vref = |v: u64| VecRef {
            transfer: idx as u32,
            vector: v as u32,
        };

        for (h, &tsp) in path.tsps.iter().enumerate() {
            let d = depth.entry(tsp).or_insert(0);
            *d = (*d).max(h);
        }

        // Preload the source SRAM with the payload.
        let src_pre = preloads.entry(tr.from).or_default();
        for v in 0..n {
            src_pre.push(PlannedPreload {
                slice: tr.src_slice,
                offset: tr.src_offset + v as u16,
                vec: vref(v),
            });
        }

        // Source program: Read -> Send per vector. The schedule is asked
        // for an injection no earlier than READ_LATENCY, so the first read
        // lands at cycle >= 0; `saturating_sub` makes the subtraction
        // well-defined even at the boundary where send0 == READ_LATENCY.
        let send0 = hop_starts[0];
        debug_assert!(
            send0 >= READ_LATENCY,
            "schedule injected before the SRAM read pipeline could stage a vector"
        );
        let read0 = send0.saturating_sub(READ_LATENCY);
        let src_stream = alloc_stream(&mut streams, tr.from, read0, send0 + (n - 1) * slot)?;
        let src_port = port_of(topo, path, 0, tr.from);
        let prog = programs.entry(tr.from).or_default();
        for v in 0..n {
            prog.push(
                read0 + v * slot,
                Instruction::Read {
                    slice: tr.src_slice,
                    offset: tr.src_offset + v as u16,
                    stream: src_stream,
                    dir: Direction::East,
                },
            );
            prog.push(
                send0 + v * slot,
                Instruction::Send {
                    port: src_port,
                    stream: src_stream,
                },
            );
        }

        // Intermediate hops: Receive -> Write -> Read -> Send. The vector
        // must be staged in local SRAM between arrival and forwarding
        // ("we use the local SRAM storage on each TSP to provide
        // intermediate buffering", §2.3) — a stream register alone would
        // be overwritten by the next arriving flit long before the
        // 398-cycle forwarding point. This staging is exactly what the
        // per-hop overhead pays for.
        for h in 1..path.links.len() {
            let tsp = path.tsps[h];
            let in_port = port_of(topo, path, h - 1, tsp);
            let out_port = port_of(topo, path, h, tsp);
            let in_latency = scheduled_link_latency(topo, path.links[h - 1]);
            let arrive0 = hop_starts[h - 1] + slot + in_latency;
            let forward0 = hop_starts[h];
            debug_assert!(
                forward0 >= READ_LATENCY,
                "forwarding hop scheduled before the SRAM read pipeline"
            );
            let fread0 = forward0.saturating_sub(READ_LATENCY);
            let in_stream = alloc_stream(&mut streams, tsp, arrive0, arrive0 + (n - 1) * slot + 1)?;
            let out_stream = alloc_stream(&mut streams, tsp, fread0, forward0 + (n - 1) * slot)?;
            let scratch = scratch_base(&mut scratch_next, tsp, n as u16);
            let prog = programs.entry(tsp).or_default();
            for v in 0..n {
                let arrive = arrive0 + v * slot;
                let forward = forward0 + v * slot;
                debug_assert!(forward > arrive + 1 + READ_LATENCY);
                prog.push(
                    arrive,
                    Instruction::Receive {
                        port: in_port,
                        stream: in_stream,
                    },
                );
                prog.push(
                    arrive + 1,
                    Instruction::Write {
                        slice: SCRATCH_SLICE,
                        offset: scratch + v as u16,
                        stream: in_stream,
                    },
                );
                prog.push(
                    fread0 + v * slot,
                    Instruction::Read {
                        slice: SCRATCH_SLICE,
                        offset: scratch + v as u16,
                        stream: out_stream,
                        dir: Direction::East,
                    },
                );
                prog.push(
                    forward,
                    Instruction::Send {
                        port: out_port,
                        stream: out_stream,
                    },
                );
            }
        }

        // Destination: Receive -> Write.
        let last = path.links.len() - 1;
        let dst_port = port_of(topo, path, last, tr.to);
        let out_latency = scheduled_link_latency(topo, path.links[last]);
        let dst_arrive0 = hop_starts[last] + slot + out_latency;
        let dst_stream = alloc_stream(
            &mut streams,
            tr.to,
            dst_arrive0,
            dst_arrive0 + (n - 1) * slot + 1,
        )?;
        let prog = programs.entry(tr.to).or_default();
        for v in 0..n {
            let arrive = dst_arrive0 + v * slot;
            prog.push(
                arrive,
                Instruction::Receive {
                    port: dst_port,
                    stream: dst_stream,
                },
            );
            prog.push(
                arrive + 1,
                Instruction::Write {
                    slice: tr.dst_slice,
                    offset: tr.dst_offset + v as u16,
                    stream: dst_stream,
                },
            );
        }

        // Materialize every delivery and every promised emission straight
        // from the schedule: the O(1) topology port index maps each
        // sending port to its (link, peer, peer port) once per hop.
        for (h, &hop_start) in hop_starts.iter().enumerate().take(path.links.len()) {
            let sender = path.tsps[h];
            let out_port = port_of(topo, path, h, sender);
            let (link, peer, peer_port) = topo
                .port_peer(sender, out_port)
                .expect("scheduled port is wired");
            debug_assert_eq!(link, path.links[h]);
            debug_assert_eq!(peer, path.tsps[h + 1]);
            let latency = scheduled_link_latency(topo, path.links[h]);
            let promised = emissions.entry(sender).or_default();
            for v in 0..n {
                promised.push(PlannedEmission {
                    cycle: hop_start + v * slot,
                    port: out_port,
                    vec: vref(v),
                });
            }
            let inbox = deliveries.entry(peer).or_default();
            for v in 0..n {
                inbox.push(PlannedDelivery {
                    port: peer_port,
                    cycle: hop_start + (v + 1) * slot + latency,
                    vec: vref(v),
                    link,
                });
            }
        }
    }

    // Assemble per-chip plans in ascending TspId order and group them into
    // hop-depth levels: a chip at depth d receives only from chips at
    // depth < d, so levels execute in topological order and chips within a
    // level are mutually independent.
    let mut tsps: Vec<TspId> = programs.keys().copied().collect();
    tsps.sort();
    let mut chips = Vec::with_capacity(tsps.len());
    let mut levels: Vec<Vec<u32>> = Vec::new();
    let mut slab: Vec<TimedInstruction> = Vec::new();
    let mut instructions = 0usize;
    for (i, &tsp) in tsps.iter().enumerate() {
        let d = depth[&tsp];
        if levels.len() <= d {
            levels.resize(d + 1, Vec::new());
        }
        levels[d].push(i as u32);
        let mut program = programs
            .remove(&tsp)
            .expect("program exists for listed chip");
        // Issue-sort once at compile time, then flatten into the shared
        // slab; every execution runs the window without cloning or
        // re-sorting it.
        program.sort_in_place();
        instructions += program.len();
        let prog_start = slab.len() as u32;
        slab.extend_from_slice(program.instrs());
        let prog_end = slab.len() as u32;
        let mut dels = deliveries.remove(&tsp).unwrap_or_default();
        // Stable (port, cycle) order: each port's queue is fed
        // nondecreasing, and equal keys keep transfer order — consumption
        // order is identical to the legacy per-delivery re-sort.
        dels.sort_by_key(|d| (d.port, d.cycle));
        let mut emis = emissions.remove(&tsp).unwrap_or_default();
        emis.sort_by_key(|e| (e.cycle, e.port));
        chips.push(ChipPlan {
            tsp,
            depth: d as u32,
            shard: shard_key(tsp),
            prog_start,
            prog_end,
            preloads: preloads.remove(&tsp).unwrap_or_default(),
            deliveries: dels,
            emissions: emis,
        });
    }

    Ok(CompiledPlan {
        shapes: shapes.to_vec(),
        chips,
        slab,
        levels,
        arrivals,
        instructions,
    })
}

/// The port number `tsp` uses on hop `h`'s link.
fn port_of(topo: &Topology, path: &Path, h: usize, tsp: TspId) -> u8 {
    let l = topo.link(path.links[h]);
    if l.a == tsp {
        l.a_port
    } else {
        debug_assert_eq!(l.b, tsp);
        l.b_port
    }
}

/// Hand-rolled JSON round-trip for [`CompiledPlan`] (the offline
/// toolchain stubs serde_json). Emitter and parser share the
/// [`tsm_trace::JsonWriter`] / [`tsm_trace::Cursor`] combinators, so the
/// escaping and structure rules match every other serializer in the
/// workspace.
mod json {
    use super::{
        ChipPlan, CompiledPlan, PlannedDelivery, PlannedEmission, PlannedPreload, TransferShape,
        VecRef,
    };
    use tsm_chip::exec::TimedInstruction;
    use tsm_isa::instr::{Instruction, VectorOpcode};
    use tsm_isa::{Direction, StreamId};
    use tsm_topology::{LinkId, TspId};
    use tsm_trace::{Cursor, JsonWriter};

    fn emit_vec_ref(w: &mut JsonWriter, v: &VecRef) {
        w.field_u64("transfer", v.transfer.into());
        w.field_u64("vector", v.vector.into());
    }

    fn emit_instr(w: &mut JsonWriter, ti: &TimedInstruction) {
        w.begin_object();
        w.field_u64("cycle", ti.cycle);
        match &ti.instr {
            Instruction::Sync => {
                w.field_str("op", "sync");
            }
            Instruction::Notify => {
                w.field_str("op", "notify");
            }
            Instruction::Deskew => {
                w.field_str("op", "deskew");
            }
            Instruction::RuntimeDeskew { target_cycles } => {
                w.field_str("op", "runtime_deskew");
                w.field_u64("target_cycles", *target_cycles);
            }
            Instruction::Transmit { port } => {
                w.field_str("op", "transmit");
                w.field_u64("port", (*port).into());
            }
            Instruction::Receive { port, stream } => {
                w.field_str("op", "receive");
                w.field_u64("port", (*port).into());
                w.field_u64("stream", stream.index() as u64);
            }
            Instruction::Send { port, stream } => {
                w.field_str("op", "send");
                w.field_u64("port", (*port).into());
                w.field_u64("stream", stream.index() as u64);
            }
            Instruction::Read {
                slice,
                offset,
                stream,
                dir,
            } => {
                w.field_str("op", "read");
                w.field_u64("slice", (*slice).into());
                w.field_u64("offset", (*offset).into());
                w.field_u64("stream", stream.index() as u64);
                w.field_str(
                    "dir",
                    match dir {
                        Direction::East => "east",
                        Direction::West => "west",
                    },
                );
            }
            Instruction::Write {
                slice,
                offset,
                stream,
            } => {
                w.field_str("op", "write");
                w.field_u64("slice", (*slice).into());
                w.field_u64("offset", (*offset).into());
                w.field_u64("stream", stream.index() as u64);
            }
            Instruction::InstallWeight { stream } => {
                w.field_str("op", "install_weight");
                w.field_u64("stream", stream.index() as u64);
            }
            Instruction::MatMul { input, output } => {
                w.field_str("op", "matmul");
                w.field_u64("input", input.index() as u64);
                w.field_u64("output", output.index() as u64);
            }
            Instruction::VectorOp { op, a, b, dest } => {
                w.field_str("op", "vector_op");
                w.field_str(
                    "vop",
                    match op {
                        VectorOpcode::Add => "add",
                        VectorOpcode::Sub => "sub",
                        VectorOpcode::Mul => "mul",
                        VectorOpcode::Rsqrt => "rsqrt",
                        VectorOpcode::Splat => "splat",
                    },
                );
                w.field_u64("a", a.index() as u64);
                w.field_u64("b", b.index() as u64);
                w.field_u64("dest", dest.index() as u64);
            }
            Instruction::Permute { input, output } => {
                w.field_str("op", "permute");
                w.field_u64("input", input.index() as u64);
                w.field_u64("output", output.index() as u64);
            }
            Instruction::Nop => {
                w.field_str("op", "nop");
            }
        }
        w.end_object();
    }

    pub(super) fn emit(plan: &CompiledPlan) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("shapes").begin_array();
        for s in &plan.shapes {
            w.begin_object();
            w.field_u64("from", s.from.0.into());
            w.field_u64("to", s.to.0.into());
            w.field_u64("src_slice", s.src_slice.into());
            w.field_u64("src_offset", s.src_offset.into());
            w.field_u64("dst_slice", s.dst_slice.into());
            w.field_u64("dst_offset", s.dst_offset.into());
            w.field_u64("vectors", s.vectors.into());
            w.end_object();
        }
        w.end_array();
        w.key("chips").begin_array();
        for c in &plan.chips {
            w.begin_object();
            w.field_u64("tsp", c.tsp.0.into());
            w.field_u64("depth", c.depth.into());
            w.field_u64("shard", c.shard.into());
            w.field_u64("prog_start", c.prog_start.into());
            w.field_u64("prog_end", c.prog_end.into());
            w.key("preloads").begin_array();
            for p in &c.preloads {
                w.begin_object();
                w.field_u64("slice", p.slice.into());
                w.field_u64("offset", p.offset.into());
                emit_vec_ref(&mut w, &p.vec);
                w.end_object();
            }
            w.end_array();
            w.key("deliveries").begin_array();
            for d in &c.deliveries {
                w.begin_object();
                w.field_u64("port", d.port.into());
                w.field_u64("cycle", d.cycle);
                emit_vec_ref(&mut w, &d.vec);
                w.field_u64("link", d.link.0.into());
                w.end_object();
            }
            w.end_array();
            w.key("emissions").begin_array();
            for e in &c.emissions {
                w.begin_object();
                w.field_u64("cycle", e.cycle);
                w.field_u64("port", e.port.into());
                emit_vec_ref(&mut w, &e.vec);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("slab").begin_array();
        for ti in &plan.slab {
            emit_instr(&mut w, ti);
        }
        w.end_array();
        w.key("levels").begin_array();
        for level in &plan.levels {
            w.begin_array();
            for &i in level {
                w.u64(i.into());
            }
            w.end_array();
        }
        w.end_array();
        w.key("arrivals").begin_array();
        for &a in &plan.arrivals {
            w.u64(a);
        }
        w.end_array();
        w.field_u64("instructions", plan.instructions as u64);
        w.end_object();
        w.finish()
    }

    fn stream(v: u64) -> Result<StreamId, String> {
        StreamId::new(v as u8).map_err(|_| format!("stream id {v} out of range"))
    }

    fn require(v: Option<u64>, what: &str) -> Result<u64, String> {
        v.ok_or_else(|| format!("instruction missing {what:?}"))
    }

    /// Parses one slab entry. Fields are collected order-independently,
    /// then assembled according to the `op` tag; missing required fields
    /// and unknown ops/fields are errors.
    fn parse_instr(c: &mut Cursor) -> Result<TimedInstruction, String> {
        let mut cycle = None;
        let (mut op, mut dir, mut vop) = (None, None, None);
        let mut num: [Option<u64>; 10] = [None; 10];
        const TARGET: usize = 0;
        const PORT: usize = 1;
        const STREAM: usize = 2;
        const SLICE: usize = 3;
        const OFFSET: usize = 4;
        const INPUT: usize = 5;
        const OUTPUT: usize = 6;
        const A: usize = 7;
        const B: usize = 8;
        const DEST: usize = 9;
        c.object(|c, key| {
            match key {
                "cycle" => cycle = Some(c.u64()?),
                "op" => op = Some(c.string()?),
                "dir" => dir = Some(c.string()?),
                "vop" => vop = Some(c.string()?),
                "target_cycles" => num[TARGET] = Some(c.u64()?),
                "port" => num[PORT] = Some(c.u64()?),
                "stream" => num[STREAM] = Some(c.u64()?),
                "slice" => num[SLICE] = Some(c.u64()?),
                "offset" => num[OFFSET] = Some(c.u64()?),
                "input" => num[INPUT] = Some(c.u64()?),
                "output" => num[OUTPUT] = Some(c.u64()?),
                "a" => num[A] = Some(c.u64()?),
                "b" => num[B] = Some(c.u64()?),
                "dest" => num[DEST] = Some(c.u64()?),
                other => return Err(format!("unknown instruction field {other:?}")),
            }
            Ok(())
        })?;
        let op = op.ok_or("instruction missing \"op\"")?;
        let instr = match op.as_str() {
            "sync" => Instruction::Sync,
            "notify" => Instruction::Notify,
            "deskew" => Instruction::Deskew,
            "nop" => Instruction::Nop,
            "runtime_deskew" => Instruction::RuntimeDeskew {
                target_cycles: require(num[TARGET], "target_cycles")?,
            },
            "transmit" => Instruction::Transmit {
                port: require(num[PORT], "port")? as u8,
            },
            "receive" => Instruction::Receive {
                port: require(num[PORT], "port")? as u8,
                stream: stream(require(num[STREAM], "stream")?)?,
            },
            "send" => Instruction::Send {
                port: require(num[PORT], "port")? as u8,
                stream: stream(require(num[STREAM], "stream")?)?,
            },
            "read" => Instruction::Read {
                slice: require(num[SLICE], "slice")? as u8,
                offset: require(num[OFFSET], "offset")? as u16,
                stream: stream(require(num[STREAM], "stream")?)?,
                dir: match dir.as_deref() {
                    Some("east") => Direction::East,
                    Some("west") => Direction::West,
                    other => return Err(format!("bad read direction {other:?}")),
                },
            },
            "write" => Instruction::Write {
                slice: require(num[SLICE], "slice")? as u8,
                offset: require(num[OFFSET], "offset")? as u16,
                stream: stream(require(num[STREAM], "stream")?)?,
            },
            "install_weight" => Instruction::InstallWeight {
                stream: stream(require(num[STREAM], "stream")?)?,
            },
            "matmul" => Instruction::MatMul {
                input: stream(require(num[INPUT], "input")?)?,
                output: stream(require(num[OUTPUT], "output")?)?,
            },
            "permute" => Instruction::Permute {
                input: stream(require(num[INPUT], "input")?)?,
                output: stream(require(num[OUTPUT], "output")?)?,
            },
            "vector_op" => Instruction::VectorOp {
                op: match vop.as_deref() {
                    Some("add") => VectorOpcode::Add,
                    Some("sub") => VectorOpcode::Sub,
                    Some("mul") => VectorOpcode::Mul,
                    Some("rsqrt") => VectorOpcode::Rsqrt,
                    Some("splat") => VectorOpcode::Splat,
                    other => return Err(format!("bad vector opcode {other:?}")),
                },
                a: stream(require(num[A], "a")?)?,
                b: stream(require(num[B], "b")?)?,
                dest: stream(require(num[DEST], "dest")?)?,
            },
            other => return Err(format!("unknown instruction op {other:?}")),
        };
        Ok(TimedInstruction {
            cycle: cycle.ok_or("instruction missing \"cycle\"")?,
            instr,
        })
    }

    fn parse_shape(c: &mut Cursor) -> Result<TransferShape, String> {
        let mut s = TransferShape {
            from: TspId(0),
            to: TspId(0),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 0,
            dst_offset: 0,
            vectors: 0,
        };
        c.object(|c, key| {
            match key {
                "from" => s.from = TspId(c.u64()? as u32),
                "to" => s.to = TspId(c.u64()? as u32),
                "src_slice" => s.src_slice = c.u64()? as u8,
                "src_offset" => s.src_offset = c.u64()? as u16,
                "dst_slice" => s.dst_slice = c.u64()? as u8,
                "dst_offset" => s.dst_offset = c.u64()? as u16,
                "vectors" => s.vectors = c.u64()? as u32,
                other => return Err(format!("unknown shape field {other:?}")),
            }
            Ok(())
        })?;
        Ok(s)
    }

    fn parse_chip(c: &mut Cursor) -> Result<ChipPlan, String> {
        let mut chip = ChipPlan {
            tsp: TspId(0),
            depth: 0,
            shard: 0,
            prog_start: 0,
            prog_end: 0,
            preloads: Vec::new(),
            deliveries: Vec::new(),
            emissions: Vec::new(),
        };
        c.object(|c, key| {
            match key {
                "tsp" => chip.tsp = TspId(c.u64()? as u32),
                "depth" => chip.depth = c.u64()? as u32,
                "shard" => chip.shard = c.u64()? as u32,
                "prog_start" => chip.prog_start = c.u64()? as u32,
                "prog_end" => chip.prog_end = c.u64()? as u32,
                "preloads" => c.array(|c| {
                    let mut p = PlannedPreload {
                        slice: 0,
                        offset: 0,
                        vec: VecRef {
                            transfer: 0,
                            vector: 0,
                        },
                    };
                    c.object(|c, key| {
                        match key {
                            "slice" => p.slice = c.u64()? as u8,
                            "offset" => p.offset = c.u64()? as u16,
                            "transfer" => p.vec.transfer = c.u64()? as u32,
                            "vector" => p.vec.vector = c.u64()? as u32,
                            other => return Err(format!("unknown preload field {other:?}")),
                        }
                        Ok(())
                    })?;
                    chip.preloads.push(p);
                    Ok(())
                })?,
                "deliveries" => c.array(|c| {
                    let mut d = PlannedDelivery {
                        port: 0,
                        cycle: 0,
                        vec: VecRef {
                            transfer: 0,
                            vector: 0,
                        },
                        link: LinkId(0),
                    };
                    c.object(|c, key| {
                        match key {
                            "port" => d.port = c.u64()? as u8,
                            "cycle" => d.cycle = c.u64()?,
                            "transfer" => d.vec.transfer = c.u64()? as u32,
                            "vector" => d.vec.vector = c.u64()? as u32,
                            "link" => d.link = LinkId(c.u64()? as u32),
                            other => return Err(format!("unknown delivery field {other:?}")),
                        }
                        Ok(())
                    })?;
                    chip.deliveries.push(d);
                    Ok(())
                })?,
                "emissions" => c.array(|c| {
                    let mut e = PlannedEmission {
                        cycle: 0,
                        port: 0,
                        vec: VecRef {
                            transfer: 0,
                            vector: 0,
                        },
                    };
                    c.object(|c, key| {
                        match key {
                            "cycle" => e.cycle = c.u64()?,
                            "port" => e.port = c.u64()? as u8,
                            "transfer" => e.vec.transfer = c.u64()? as u32,
                            "vector" => e.vec.vector = c.u64()? as u32,
                            other => return Err(format!("unknown emission field {other:?}")),
                        }
                        Ok(())
                    })?;
                    chip.emissions.push(e);
                    Ok(())
                })?,
                other => return Err(format!("unknown chip field {other:?}")),
            }
            Ok(())
        })?;
        Ok(chip)
    }

    pub(super) fn parse(s: &str) -> Result<CompiledPlan, String> {
        let mut plan = CompiledPlan {
            shapes: Vec::new(),
            chips: Vec::new(),
            slab: Vec::new(),
            levels: Vec::new(),
            arrivals: Vec::new(),
            instructions: 0,
        };
        let mut c = Cursor::new(s);
        c.object(|c, key| match key {
            "shapes" => c.array(|c| {
                plan.shapes.push(parse_shape(c)?);
                Ok(())
            }),
            "chips" => c.array(|c| {
                plan.chips.push(parse_chip(c)?);
                Ok(())
            }),
            "slab" => c.array(|c| {
                plan.slab.push(parse_instr(c)?);
                Ok(())
            }),
            "levels" => c.array(|c| {
                let mut level = Vec::new();
                c.array(|c| {
                    level.push(c.u64()? as u32);
                    Ok(())
                })?;
                plan.levels.push(level);
                Ok(())
            }),
            "arrivals" => c.array(|c| {
                plan.arrivals.push(c.u64()?);
                Ok(())
            }),
            "instructions" => {
                plan.instructions = c.u64()? as usize;
                Ok(())
            }
            other => Err(format!("unknown plan field {other:?}")),
        })?;
        c.expect_end()?;
        for chip in &plan.chips {
            if chip.prog_start > chip.prog_end || chip.prog_end as usize > plan.slab.len() {
                return Err(format!(
                    "chip {} program window [{}, {}) exceeds slab of {}",
                    chip.tsp.0,
                    chip.prog_start,
                    chip.prog_end,
                    plan.slab.len()
                ));
            }
        }
        Ok(plan)
    }
}
