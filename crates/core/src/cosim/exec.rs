//! Execute stage of the co-simulation pipeline: binding payload vectors to
//! a [`CompiledPlan`] and running every chip exactly once.
//!
//! The executor owns the per-chip simulators and *resets* them between
//! invocations instead of rebuilding them, so the marginal cost of one
//! more execution is the chip passes themselves — no routing, scheduling,
//! lowering or stream allocation happens here. This is the runtime half of
//! the paper's compile-once / execute-many contract (§5, Fig 17).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use tsm_chip::exec::{ChipSim, ExecError, Payload};
use tsm_fault::inject::FecStats;
use tsm_isa::packet::WirePacket;
use tsm_link::channel::Channel;
use tsm_link::fec::FecOutcome;
use tsm_link::latency::LatencyModel;
use tsm_link::meter::LinkMeter;
use tsm_topology::LinkId;
use tsm_trace::{names, CycleHistogram, EventKind, Metrics, TraceSink, Tracer};

use super::plan::{ChipPlan, CompiledPlan, PlannedDelivery, VecRef};
use super::verify::{verify_destinations, verify_emissions};
use super::{CosimError, CosimReport};

/// An exact, deterministic corruption: flip `bits` of the payload of
/// vector `vector` of transfer `transfer` as it crosses `link`. Fault
/// tests use these to place a single- or multi-bit error on a specific
/// hop of a specific route, independent of any RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetedFlip {
    /// Transfer index into the plan.
    pub transfer: u32,
    /// Vector index within the transfer.
    pub vector: u32,
    /// The hop (physical link) on which the corruption strikes.
    pub link: LinkId,
    /// Zero-based payload bit positions to flip.
    pub bits: Vec<usize>,
}

/// Per-link bit-error configuration for datapath fault injection.
///
/// When a model is passed to [`PlanExecutor::execute_with_faults`], every
/// inter-chip delivery traverses a [`Channel`] for its link: bit flips are
/// sampled from the link's BER (Poisson over the 2560 payload bits),
/// applied to a copy of the payload bytes, and run through the receiver's
/// FEC decoder. Corrected payloads continue downstream — and must still
/// verify bit-for-bit against the emission/destination manifests, which is
/// the paper's "constant-latency in-situ correction" claim exercised on
/// real data. An uncorrectable error aborts the run with
/// [`CosimError::Uncorrectable`].
///
/// Every delivery's flip pattern is derived from `(seed, link, transfer,
/// vector)` alone, so the injection is independent of chip iteration
/// order, payload bytes, and parallelism — a given seed corrupts the same
/// bits of the same vectors on the same hops, every run.
#[derive(Debug, Clone, Default)]
pub struct LinkFaultModel {
    /// BER applied to every link not listed in `per_link`.
    pub base_ber: f64,
    /// Per-link BER overrides (marginal links).
    pub per_link: HashMap<LinkId, f64>,
    /// Master seed for the per-delivery error draws.
    pub seed: u64,
    /// Exact corruptions, applied instead of sampling on the deliveries
    /// they name.
    pub targeted: Vec<TargetedFlip>,
}

impl LinkFaultModel {
    /// A model with one BER across every link.
    pub fn uniform(ber: f64, seed: u64) -> Self {
        LinkFaultModel {
            base_ber: ber,
            seed,
            ..LinkFaultModel::default()
        }
    }

    /// Overrides the BER of one (marginal) link.
    pub fn with_link(mut self, link: LinkId, ber: f64) -> Self {
        self.per_link.insert(link, ber);
        self
    }

    /// A model that samples nothing and applies only the given exact flips.
    pub fn targeted_only(flips: Vec<TargetedFlip>) -> Self {
        LinkFaultModel {
            targeted: flips,
            ..LinkFaultModel::default()
        }
    }

    /// The BER `link` operates at.
    pub fn ber_for(&self, link: LinkId) -> f64 {
        self.per_link.get(&link).copied().unwrap_or(self.base_ber)
    }

    /// Every targeted bit flip aimed at delivery `(vec, link)`.
    fn targeted_bits(&self, vec: VecRef, link: LinkId) -> Vec<usize> {
        self.targeted
            .iter()
            .filter(|t| t.transfer == vec.transfer && t.vector == vec.vector && t.link == link)
            .flat_map(|t| t.bits.iter().copied())
            .collect()
    }

    /// RNG for one delivery, keyed by (seed, link, transfer, vector) so the
    /// draw does not depend on the order deliveries are bound in.
    fn delivery_rng(&self, vec: VecRef, link: LinkId) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for w in [link.0 as u64, vec.transfer as u64, vec.vector as u64] {
            h = (h ^ w).wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Carries one delivery's payload through its link's channel: returns the
/// payload to hand the receiving chip, the FEC outcome observed, and
/// whether a miscorrection was demoted.
///
/// `Clean` keeps the original `Arc` (the executor's pointer-equality fast
/// path); `Corrected` re-wraps the repaired bytes in a fresh `Arc`, so the
/// downstream manifest checks fall back to the byte comparison — which is
/// exactly the bit-for-bit proof the fault mode exists to provide. The
/// demoting channel APIs guarantee a surviving `Corrected` outcome carries
/// the exact transmitted bytes: a "correction" that decodes to the wrong
/// payload (possible when ≥3 flips alias a valid single-error syndrome)
/// comes back `Uncorrectable` with `demoted = true` — the engine never
/// lets a plausible-but-wrong payload continue silently.
fn transmit_delivery(
    faults: &LinkFaultModel,
    channel: &Channel,
    d: &PlannedDelivery,
    original: &Payload,
) -> (Payload, FecOutcome, bool) {
    let packet = WirePacket::data(d.vec.vector as u16, original.as_ref().clone());
    let targeted = faults.targeted_bits(d.vec, d.link);
    let (delivery, demoted) = if targeted.is_empty() {
        let mut rng = faults.delivery_rng(d.vec, d.link);
        channel.transmit_demoting(&packet, d.cycle, &mut rng)
    } else {
        channel.transmit_with_flips_demoting(&packet, d.cycle, &targeted)
    };
    match delivery.outcome {
        FecOutcome::Clean => (Arc::clone(original), FecOutcome::Clean, false),
        FecOutcome::Corrected { bit } => (
            Arc::new(delivery.packet.payload),
            FecOutcome::Corrected { bit },
            false,
        ),
        // Decoder give-up, or a demoted miscorrection. Both force a
        // replay; neither may deliver wrong bytes.
        FecOutcome::Uncorrectable => (Arc::clone(original), FecOutcome::Uncorrectable, demoted),
    }
}

/// Reusable payload-binding executor.
///
/// One `PlanExecutor` can run many plans and many payload sets; its chip
/// simulators are reset (allocations retained) at the start of every
/// execution, so no state leaks between invocations and no state is
/// rebuilt. Serial and parallel execution are bit-identical — see the
/// module docs of [`super`].
#[derive(Debug, Default)]
pub struct PlanExecutor {
    /// Per-chip simulators, aligned by index with the executing plan's
    /// chip list (grown on demand), reset and re-bound on every
    /// execution. Indexing by position instead of TSP id keeps the warm
    /// path free of hash lookups.
    sims: Vec<ChipSim>,
    /// Where trace events go; `None` (the default) costs one branch per
    /// emission point, as does an attached [`tsm_trace::NullSink`].
    sink: Option<Arc<dyn TraceSink>>,
    /// Added to every emitted event's cycle — the runtime uses this to
    /// place each replay epoch after the previous one on the launch
    /// timeline. Metrics and reports are unaffected.
    trace_offset: u64,
}

impl PlanExecutor {
    /// An executor with no chip state yet; simulators are created on first
    /// use and recycled thereafter.
    pub fn new() -> Self {
        PlanExecutor::default()
    }

    /// Routes trace events from subsequent executions into `sink`.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the trace sink (tracing back to zero-cost disabled).
    pub fn clear_trace_sink(&mut self) {
        self.sink = None;
    }

    /// Sets the cycle offset applied to subsequently emitted events.
    pub fn set_trace_offset(&mut self, offset: u64) {
        self.trace_offset = offset;
    }

    /// Binds `payloads` to `plan` and executes it, chips within a hop
    /// level in parallel on scoped threads.
    ///
    /// `payloads[t][v]` is vector `v` of transfer `t` and must match the
    /// plan's [`TransferShape`]s exactly.
    ///
    /// [`TransferShape`]: super::plan::TransferShape
    pub fn execute(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, true, None)
    }

    /// [`PlanExecutor::execute`] with all chips run on the calling thread,
    /// in ascending (depth, TspId) order. Bit-identical to the parallel
    /// path — the determinism tests and benches compare the two.
    pub fn execute_serial(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, false, None)
    }

    /// [`PlanExecutor::execute`] with every inter-chip delivery passed
    /// through its link's BER channel per `faults` — the datapath fault
    /// mode. Corruption happens in the (serial) bind phase, so parallel
    /// and serial execution remain bit-identical under injection.
    pub fn execute_with_faults(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
        faults: &LinkFaultModel,
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, true, Some(faults))
    }

    /// [`PlanExecutor::execute_with_faults`], all chips on the calling
    /// thread.
    pub fn execute_with_faults_serial(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
        faults: &LinkFaultModel,
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, false, Some(faults))
    }

    fn execute_impl(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
        parallel: bool,
        faults: Option<&LinkFaultModel>,
    ) -> Result<CosimReport, CosimError> {
        // The payloads must match the shapes the plan was compiled for.
        if payloads.len() != plan.shapes.len() {
            return Err(CosimError::PayloadCount {
                expected: plan.shapes.len(),
                got: payloads.len(),
            });
        }
        for (t, (shape, data)) in plan.shapes.iter().zip(payloads).enumerate() {
            if data.len() != shape.vectors as usize {
                return Err(CosimError::PayloadShape {
                    transfer: t,
                    expected: shape.vectors as usize,
                    got: data.len(),
                });
            }
        }

        let bind = |r: &VecRef| Arc::clone(&payloads[r.transfer as usize][r.vector as usize]);

        // Per-run observability state. All emission points below sit on
        // the serial spine (this bind loop and the post-level merge loop),
        // so the event sequence — not just the sorted set — is identical
        // between serial and parallel execution.
        let metrics = Metrics::default();
        let mut tracer = Tracer::new(self.sink.as_deref()).with_offset(self.trace_offset);

        // Reset-not-rebuild: each chip's simulator keeps its allocations
        // across invocations; preloads and deliveries bind the new
        // payloads by Arc clone (pointer copies, no byte copies). In fault
        // mode each delivery additionally crosses its link's channel here,
        // in the serial bind phase — so injection cannot perturb the
        // parallel-vs-serial determinism contract.
        if self.sims.len() < plan.chips.len() {
            self.sims.resize_with(plan.chips.len(), ChipSim::default);
        }
        let mut channels: HashMap<LinkId, Channel> = HashMap::new();
        // Earliest uncorrectable delivery in (cycle, link, transfer) order;
        // the whole bind completes first so the FEC tally covers every
        // packet of the aborted attempt.
        let mut lost: Option<(u64, LinkId, usize)> = None;
        let mut culprits: Vec<LinkId> = Vec::new();
        let mut delivered: u64 = 0;
        for (chip, sim) in plan.chips.iter().zip(&mut self.sims) {
            sim.reset();
            let lane = chip.tsp.0;
            for p in &chip.preloads {
                sim.preload(p.slice, p.offset, bind(&p.vec));
            }
            delivered += chip.deliveries.len() as u64;
            for d in &chip.deliveries {
                // Deliveries are stored sorted by (port, cycle), so each
                // port queue is fed in order — no per-delivery re-sort.
                // A vector struck uncorrectable never arrived, so it emits
                // no Delivery event — the conformance profiler sees the
                // aborted window's gap instead of a phantom arrival.
                let mut landed = true;
                let payload = match faults {
                    None => bind(&d.vec),
                    Some(fm) => {
                        let channel = channels.entry(d.link).or_insert_with(|| {
                            Channel::new(LatencyModel::fixed(0), fm.ber_for(d.link))
                        });
                        let (payload, outcome, demoted) =
                            transmit_delivery(fm, channel, d, &bind(&d.vec));
                        LinkMeter::new(&metrics, d.link.0).record(&outcome, demoted);
                        match outcome {
                            FecOutcome::Clean => {}
                            FecOutcome::Corrected { bit } => tracer.instant(
                                d.cycle,
                                lane,
                                EventKind::LinkCorrected {
                                    link: d.link.0,
                                    bit: bit as u32,
                                },
                            ),
                            FecOutcome::Uncorrectable => {
                                let kind = if demoted {
                                    EventKind::LinkDemoted { link: d.link.0 }
                                } else {
                                    EventKind::LinkUncorrectable { link: d.link.0 }
                                };
                                tracer.instant(d.cycle, lane, kind);
                                culprits.push(d.link);
                                landed = false;
                                let key = (d.cycle, d.link, d.vec.transfer as usize);
                                if lost.is_none_or(|worst| key < worst) {
                                    lost = Some(key);
                                }
                            }
                        }
                        payload
                    }
                };
                if landed {
                    // The cycle-coordinate ground truth the conformance
                    // profiler joins against the plan's delivery manifest.
                    tracer.instant(
                        d.cycle,
                        lane,
                        EventKind::Delivery {
                            link: d.link.0,
                            transfer: d.vec.transfer,
                            vector: d.vec.vector,
                        },
                    );
                }
                sim.deliver_in_order(d.port, d.cycle, payload);
            }
            if tracer.enabled() && !chip.deliveries.is_empty() {
                let first = chip.deliveries.iter().map(|d| d.cycle).min().unwrap();
                let last = chip.deliveries.iter().map(|d| d.cycle).max().unwrap();
                tracer.span(
                    first,
                    (last - first).max(1),
                    lane,
                    EventKind::Deliveries {
                        count: chip.deliveries.len() as u32,
                    },
                );
            }
        }
        if let Some((cycle, link, transfer)) = lost {
            return Err(CosimError::Uncorrectable {
                link,
                transfer,
                cycle,
                fec: FecStats::from_metrics(&metrics.snapshot()),
                culprits,
            });
        }

        // Each chip runs exactly once, levels in topological order;
        // results merge in ascending TspId order whether executed serially
        // or on scoped threads, so the first error in (depth, TspId) order
        // is the one reported in both modes.
        let mut retire_cycles = HashMap::new();
        let mut retire_hist = CycleHistogram::default();
        for level in &plan.levels {
            if level.is_empty() {
                continue;
            }
            let work: Vec<(&ChipPlan, ChipSim)> = level
                .iter()
                .map(|&i| {
                    let chip = &plan.chips[i as usize];
                    // mem::take moves the sim out for the level run; the
                    // slot gets it back below (run_level preserves order).
                    (chip, std::mem::take(&mut self.sims[i as usize]))
                })
                .collect();
            for (k, (chip, result, sim)) in run_level(work, parallel).into_iter().enumerate() {
                self.sims[level[k] as usize] = sim;
                let retire = result.map_err(|error| CosimError::Chip {
                    tsp: chip.tsp,
                    error,
                })?;
                verify_emissions(
                    chip.tsp,
                    &self.sims[level[k] as usize],
                    &chip.emissions,
                    payloads,
                )?;
                retire_cycles.insert(chip.tsp, retire);
                retire_hist.observe(retire);
                if tracer.enabled() {
                    let lane = chip.tsp.0;
                    let instrs = chip.program.instrs();
                    let start = instrs.first().map_or(0, |i| i.cycle);
                    tracer.span(
                        start,
                        retire.saturating_sub(start).max(1),
                        lane,
                        EventKind::ChipExec {
                            depth: chip.depth,
                            instructions: instrs.len() as u32,
                        },
                    );
                    if let (Some(first), Some(last)) =
                        (chip.emissions.first(), chip.emissions.last())
                    {
                        // Emissions are stored sorted by (cycle, port).
                        tracer.span(
                            first.cycle,
                            (last.cycle - first.cycle).max(1),
                            lane,
                            EventKind::Emissions {
                                count: chip.emissions.len() as u32,
                            },
                        );
                    }
                }
            }
        }

        // Verify destination SRAM contents bit-for-bit and fingerprint them.
        let dst_digests = verify_destinations(plan, payloads, &self.sims)?;

        metrics.inc(names::COSIM_INSTRUCTIONS, plan.instructions as u64);
        metrics.inc(names::COSIM_DELIVERIES, delivered);
        metrics.set_gauge(names::COSIM_CHIPS, plan.chips.len() as u64);
        metrics.merge_histogram(names::COSIM_RETIRE_CYCLES, &retire_hist);
        // Surface trace loss so downstream consumers (the conformance
        // profiler refuses lossy traces) can see it without holding the
        // sink. Only set when nonzero: a clean instrumented run must report
        // metrics identical to a bare run.
        let trace_dropped = self.sink.as_deref().map_or(0, TraceSink::dropped);
        if trace_dropped > 0 {
            metrics.set_gauge(names::TRACE_DROPPED, trace_dropped);
        }

        Ok(CosimReport {
            retire_cycles,
            instructions: plan.instructions,
            arrivals: plan.arrivals.clone(),
            dst_digests,
            metrics: metrics.snapshot(),
        })
    }
}

/// Executes one depth level of chips, each exactly once.
///
/// In parallel mode the level is split into contiguous chunks over scoped
/// threads (`std::thread::scope`, no extra dependency); joining the chunks
/// in spawn order restores ascending `TspId` order, so the merged result —
/// and therefore every downstream observable — is bit-identical to the
/// serial engine no matter how the OS schedules the workers.
fn run_level(
    work: Vec<(&ChipPlan, ChipSim)>,
    parallel: bool,
) -> Vec<(&ChipPlan, Result<u64, ExecError>, ChipSim)> {
    fn exec_one(
        (chip, mut sim): (&ChipPlan, ChipSim),
    ) -> (&ChipPlan, Result<u64, ExecError>, ChipSim) {
        let result = sim.run(&chip.program);
        (chip, result, sim)
    }

    let threads = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(work.len())
    } else {
        1
    };
    if threads <= 1 {
        return work.into_iter().map(exec_one).collect();
    }
    let chunk_size = work.len().div_ceil(threads);
    let mut chunks: Vec<Vec<(&ChipPlan, ChipSim)>> = Vec::with_capacity(threads);
    let mut it = work.into_iter();
    loop {
        let chunk: Vec<_> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(exec_one).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chip worker panicked"))
            .collect()
    })
}
