//! Execute stage of the co-simulation pipeline: binding payload vectors to
//! a [`CompiledPlan`] and running every chip exactly once.
//!
//! The executor owns the per-chip simulators and *resets* them between
//! invocations instead of rebuilding them, so the marginal cost of one
//! more execution is the chip passes themselves — no routing, scheduling,
//! lowering or stream allocation happens here. This is the runtime half of
//! the paper's compile-once / execute-many contract (§5, Fig 17).
//!
//! Parallelism comes from a persistent worker pool: workers are created
//! once (lazily, at the first parallel execution) and each hop-depth level
//! is a single epoch dispatch. Which worker runs which chip is fixed at
//! plan-compile time by [`ChipPlan::shard`] — a hash of the TSP id — so
//! the assignment depends on the plan alone, never on OS scheduling. Every
//! observable (results, traces, metrics, the first error) is merged on the
//! calling thread in ascending `(depth, TspId)` order, which is what makes
//! serial and parallel execution bit-identical.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::Arc;
use tsm_chip::exec::{ChipSim, Payload};
use tsm_fault::inject::FecStats;
use tsm_isa::packet::WirePacket;
use tsm_link::channel::Channel;
use tsm_link::fec::FecOutcome;
use tsm_link::latency::LatencyModel;
use tsm_link::meter::LinkMeter;
use tsm_topology::LinkId;
use tsm_trace::telemetry::{self, Sampler, Telemetry, TelemetryConfig};
use tsm_trace::{names, EventKind, Metrics, TraceSink, Tracer};

use super::plan::{ChipPlan, CompiledPlan, PlannedDelivery, VecRef};
use super::pool::WorkerPool;
use super::verify::{verify_destinations, verify_emissions};
use super::{CosimError, CosimReport};

/// Environment variable overriding the parallel worker count (a positive
/// integer). An explicit [`PlanExecutor::set_threads`] wins over it; an
/// unset/invalid value falls back to `available_parallelism`.
pub const TSM_THREADS_ENV: &str = "TSM_THREADS";

/// An exact, deterministic corruption: flip `bits` of the payload of
/// vector `vector` of transfer `transfer` as it crosses `link`. Fault
/// tests use these to place a single- or multi-bit error on a specific
/// hop of a specific route, independent of any RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetedFlip {
    /// Transfer index into the plan.
    pub transfer: u32,
    /// Vector index within the transfer.
    pub vector: u32,
    /// The hop (physical link) on which the corruption strikes.
    pub link: LinkId,
    /// Zero-based payload bit positions to flip.
    pub bits: Vec<usize>,
}

/// Per-link bit-error configuration for datapath fault injection.
///
/// When a model is passed to [`PlanExecutor::execute_with_faults`], every
/// inter-chip delivery traverses a [`Channel`] for its link: bit flips are
/// sampled from the link's BER (Poisson over the 2560 payload bits),
/// applied to a copy of the payload bytes, and run through the receiver's
/// FEC decoder. Corrected payloads continue downstream — and must still
/// verify bit-for-bit against the emission/destination manifests, which is
/// the paper's "constant-latency in-situ correction" claim exercised on
/// real data. An uncorrectable error aborts the run with
/// [`CosimError::Uncorrectable`].
///
/// Every delivery's flip pattern is derived from `(seed, link, transfer,
/// vector)` alone, so the injection is independent of chip iteration
/// order, payload bytes, and parallelism — a given seed corrupts the same
/// bits of the same vectors on the same hops, every run.
#[derive(Debug, Clone, Default)]
pub struct LinkFaultModel {
    /// BER applied to every link not listed in `per_link`.
    pub base_ber: f64,
    /// Per-link BER overrides (marginal links).
    pub per_link: HashMap<LinkId, f64>,
    /// Master seed for the per-delivery error draws.
    pub seed: u64,
    /// Exact corruptions, applied instead of sampling on the deliveries
    /// they name.
    pub targeted: Vec<TargetedFlip>,
}

impl LinkFaultModel {
    /// A model with one BER across every link.
    pub fn uniform(ber: f64, seed: u64) -> Self {
        LinkFaultModel {
            base_ber: ber,
            seed,
            ..LinkFaultModel::default()
        }
    }

    /// Overrides the BER of one (marginal) link.
    pub fn with_link(mut self, link: LinkId, ber: f64) -> Self {
        self.per_link.insert(link, ber);
        self
    }

    /// A model that samples nothing and applies only the given exact flips.
    pub fn targeted_only(flips: Vec<TargetedFlip>) -> Self {
        LinkFaultModel {
            targeted: flips,
            ..LinkFaultModel::default()
        }
    }

    /// The BER `link` operates at.
    pub fn ber_for(&self, link: LinkId) -> f64 {
        self.per_link.get(&link).copied().unwrap_or(self.base_ber)
    }

    /// Every targeted bit flip aimed at delivery `(vec, link)`.
    fn targeted_bits(&self, vec: VecRef, link: LinkId) -> Vec<usize> {
        self.targeted
            .iter()
            .filter(|t| t.transfer == vec.transfer && t.vector == vec.vector && t.link == link)
            .flat_map(|t| t.bits.iter().copied())
            .collect()
    }

    /// RNG for one delivery, keyed by (seed, link, transfer, vector) so the
    /// draw does not depend on the order deliveries are bound in.
    fn delivery_rng(&self, vec: VecRef, link: LinkId) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for w in [link.0 as u64, vec.transfer as u64, vec.vector as u64] {
            h = (h ^ w).wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Carries one delivery's payload through its link's channel: returns the
/// payload to hand the receiving chip, the FEC outcome observed, and
/// whether a miscorrection was demoted.
///
/// `Clean` keeps the original `Arc` (the executor's pointer-equality fast
/// path); `Corrected` re-wraps the repaired bytes in a fresh `Arc`, so the
/// downstream manifest checks fall back to the byte comparison — which is
/// exactly the bit-for-bit proof the fault mode exists to provide. The
/// demoting channel APIs guarantee a surviving `Corrected` outcome carries
/// the exact transmitted bytes: a "correction" that decodes to the wrong
/// payload (possible when ≥3 flips alias a valid single-error syndrome)
/// comes back `Uncorrectable` with `demoted = true` — the engine never
/// lets a plausible-but-wrong payload continue silently.
fn transmit_delivery(
    faults: &LinkFaultModel,
    channel: &Channel,
    d: &PlannedDelivery,
    original: &Payload,
) -> (Payload, FecOutcome, bool) {
    let packet = WirePacket::data(d.vec.vector as u16, original.as_ref().clone());
    let targeted = faults.targeted_bits(d.vec, d.link);
    let (delivery, demoted) = if targeted.is_empty() {
        let mut rng = faults.delivery_rng(d.vec, d.link);
        channel.transmit_demoting(&packet, d.cycle, &mut rng)
    } else {
        channel.transmit_with_flips_demoting(&packet, d.cycle, &targeted)
    };
    match delivery.outcome {
        FecOutcome::Clean => (Arc::clone(original), FecOutcome::Clean, false),
        FecOutcome::Corrected { bit } => (
            Arc::new(delivery.packet.payload),
            FecOutcome::Corrected { bit },
            false,
        ),
        // Decoder give-up, or a demoted miscorrection. Both force a
        // replay; neither may deliver wrong bytes.
        FecOutcome::Uncorrectable => (Arc::clone(original), FecOutcome::Uncorrectable, demoted),
    }
}

/// One chip's pending level result. Workers write disjoint slots (the
/// shard partition guarantees exclusivity); the calling thread reads them
/// after the dispatch barrier.
#[derive(Debug, Default)]
struct SlotCell(UnsafeCell<Option<Result<u64, CosimError>>>);

// Safety: slot `i` is written by exactly one worker per level (the one
// owning `chips[i].shard % workers`) and only read on the calling thread
// after the pool's dispatch barrier, which orders the accesses.
unsafe impl Sync for SlotCell {}

/// The simulator array as a raw base pointer, so workers can reach their
/// own shard's simulators. Disjointness comes from the same shard
/// partition that protects [`SlotCell`].
#[derive(Clone, Copy)]
struct SimsPtr(*mut ChipSim);

unsafe impl Send for SimsPtr {}
unsafe impl Sync for SimsPtr {}

impl SimsPtr {
    /// The simulator at index `i`.
    ///
    /// # Safety
    /// `i` is in bounds and no other reference to this simulator exists
    /// for the lifetime of the returned borrow (the executor's shard
    /// partition guarantees this during a level dispatch).
    #[allow(clippy::mut_from_ref)]
    unsafe fn chip(&self, i: usize) -> &mut ChipSim {
        &mut *self.0.add(i)
    }
}

/// Reusable payload-binding executor.
///
/// One `PlanExecutor` can run many plans and many payload sets; its chip
/// simulators are reset (allocations retained) at the start of every
/// execution, so no state leaks between invocations and no state is
/// rebuilt. Its worker pool and result slots persist the same way, so the
/// warm path neither spawns threads nor allocates per launch. Serial and
/// parallel execution are bit-identical — see the module docs of
/// [`super`].
#[derive(Debug, Default)]
pub struct PlanExecutor {
    /// Per-chip simulators, aligned by index with the executing plan's
    /// chip list (grown on demand), reset and re-bound on every
    /// execution. Indexing by position instead of TSP id keeps the warm
    /// path free of hash lookups.
    sims: Vec<ChipSim>,
    /// Where trace events go; `None` (the default) costs one branch per
    /// emission point, as does an attached [`tsm_trace::NullSink`].
    sink: Option<Arc<dyn TraceSink>>,
    /// Added to every emitted event's cycle — the runtime uses this to
    /// place each replay epoch after the previous one on the launch
    /// timeline. Metrics and reports are unaffected.
    trace_offset: u64,
    /// Explicit worker-count override (the `set_threads` knob); `None`
    /// defers to `TSM_THREADS`, then to `available_parallelism`.
    threads: Option<usize>,
    /// Persistent workers, built lazily at the first parallel execution
    /// and rebuilt only when the resolved width changes.
    pool: Option<WorkerPool>,
    /// Per-chip result slots, grown on demand and reused across
    /// executions (the allocation-free warm path).
    slots: Vec<SlotCell>,
    /// Windowed-telemetry sampling config; `None` (the default) keeps
    /// the sampler detached and every sampling point behind one branch,
    /// so disabled telemetry is bit- and trace-identical to pre-feature
    /// builds.
    telemetry_cfg: Option<TelemetryConfig>,
    /// Samples accumulated across executions since the last
    /// [`PlanExecutor::take_telemetry`] — a launch's attempts fold into
    /// one record, mirroring how attempt metrics absorb.
    sampler: Option<Sampler>,
}

impl PlanExecutor {
    /// An executor with no chip state yet; simulators are created on first
    /// use and recycled thereafter.
    pub fn new() -> Self {
        PlanExecutor::default()
    }

    /// Routes trace events from subsequent executions into `sink`.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the trace sink (tracing back to zero-cost disabled).
    pub fn clear_trace_sink(&mut self) {
        self.sink = None;
    }

    /// Sets the cycle offset applied to subsequently emitted events.
    pub fn set_trace_offset(&mut self, offset: u64) {
        self.trace_offset = offset;
    }

    /// Enables windowed telemetry: subsequent executions derive per-link
    /// delivery and per-chip busy-cycle heatmaps on `cfg`'s window, at
    /// absolute (offset-adjusted) launch-timeline cycles. Sampling sits
    /// on the same serial code paths as trace emission, so it is
    /// deterministic and observation-only.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry_cfg = Some(cfg);
    }

    /// Disables telemetry and discards any unsampled accumulation.
    pub fn clear_telemetry(&mut self) {
        self.telemetry_cfg = None;
        self.sampler = None;
    }

    /// The active sampling configuration, if telemetry is enabled.
    pub fn telemetry_cfg(&self) -> Option<TelemetryConfig> {
        self.telemetry_cfg
    }

    /// Drains the samples accumulated since the last take into a sealed
    /// record — `Some` (possibly empty) whenever telemetry is enabled,
    /// `None` when it is off. The launch engine calls this once per
    /// launch so each outcome carries exactly its own heatmaps.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        let cfg = self.telemetry_cfg?;
        Some(
            self.sampler
                .take()
                .map_or_else(|| Telemetry::empty(cfg), Sampler::finish),
        )
    }

    /// Pins the parallel worker count (clamped to at least 1). Overrides
    /// the `TSM_THREADS` environment variable; the pool is rebuilt at the
    /// next parallel execution if the width changed. Has no effect on the
    /// serial entry points.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = Some(threads.max(1));
    }

    /// Reverts to automatic worker-count resolution (`TSM_THREADS`, then
    /// `available_parallelism`).
    pub fn set_threads_auto(&mut self) {
        self.threads = None;
    }

    /// The worker count a parallel execution would use right now:
    /// explicit [`PlanExecutor::set_threads`] value, else a positive
    /// integer in `TSM_THREADS`, else `available_parallelism`.
    pub fn resolved_threads(&self) -> usize {
        if let Some(t) = self.threads {
            return t;
        }
        if let Ok(v) = std::env::var(TSM_THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Binds `payloads` to `plan` and executes it, chips within a hop
    /// level in parallel on the persistent worker pool (width per
    /// [`PlanExecutor::resolved_threads`]).
    ///
    /// `payloads[t][v]` is vector `v` of transfer `t` and must match the
    /// plan's [`TransferShape`]s exactly.
    ///
    /// [`TransferShape`]: super::plan::TransferShape
    pub fn execute(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, true, None)
    }

    /// [`PlanExecutor::execute`] with all chips run on the calling thread,
    /// in ascending (depth, TspId) order. Bit-identical to the parallel
    /// path — the determinism tests and benches compare the two.
    pub fn execute_serial(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, false, None)
    }

    /// [`PlanExecutor::execute`] with every inter-chip delivery passed
    /// through its link's BER channel per `faults` — the datapath fault
    /// mode. Corruption happens in the (serial) bind phase, so parallel
    /// and serial execution remain bit-identical under injection.
    pub fn execute_with_faults(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
        faults: &LinkFaultModel,
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, true, Some(faults))
    }

    /// [`PlanExecutor::execute_with_faults`], all chips on the calling
    /// thread.
    pub fn execute_with_faults_serial(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
        faults: &LinkFaultModel,
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, false, Some(faults))
    }

    fn execute_impl(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
        parallel: bool,
        faults: Option<&LinkFaultModel>,
    ) -> Result<CosimReport, CosimError> {
        // The payloads must match the shapes the plan was compiled for.
        if payloads.len() != plan.shapes.len() {
            return Err(CosimError::PayloadCount {
                expected: plan.shapes.len(),
                got: payloads.len(),
            });
        }
        for (t, (shape, data)) in plan.shapes.iter().zip(payloads).enumerate() {
            if data.len() != shape.vectors as usize {
                return Err(CosimError::PayloadShape {
                    transfer: t,
                    expected: shape.vectors as usize,
                    got: data.len(),
                });
            }
        }

        let bind = |r: &VecRef| Arc::clone(&payloads[r.transfer as usize][r.vector as usize]);

        // Per-run observability state. All emission points below sit on
        // the serial spine (this bind loop and the post-level merge loop),
        // so the event sequence — not just the sorted set — is identical
        // between serial and parallel execution.
        let metrics = Metrics::default();
        let mut tracer = Tracer::new(self.sink.as_deref()).with_offset(self.trace_offset);
        // Telemetry sampling shares those serial paths: heatmap samples
        // are taken at absolute launch-timeline cycles (the trace offset
        // applied), never fed back into execution, and accumulate across
        // a launch's attempts until `take_telemetry` drains them.
        if let Some(cfg) = self.telemetry_cfg {
            if self.sampler.is_none() {
                self.sampler = Some(Sampler::new(cfg));
            }
        }

        // Reset-not-rebuild: each chip's simulator keeps its allocations
        // across invocations; preloads and deliveries bind the new
        // payloads by Arc clone (pointer copies, no byte copies). In fault
        // mode each delivery additionally crosses its link's channel here,
        // in the serial bind phase — so injection cannot perturb the
        // parallel-vs-serial determinism contract.
        if self.sims.len() < plan.chips.len() {
            self.sims.resize_with(plan.chips.len(), ChipSim::default);
        }
        let mut channels: HashMap<LinkId, Channel> = HashMap::new();
        // Earliest uncorrectable delivery in (cycle, link, transfer) order;
        // the whole bind completes first so the FEC tally covers every
        // packet of the aborted attempt.
        let mut lost: Option<(u64, LinkId, usize)> = None;
        let mut culprits: Vec<LinkId> = Vec::new();
        let mut delivered: u64 = 0;
        for (chip, sim) in plan.chips.iter().zip(&mut self.sims) {
            sim.reset();
            let lane = chip.tsp.0;
            for p in &chip.preloads {
                sim.preload(p.slice, p.offset, bind(&p.vec));
            }
            delivered += chip.deliveries.len() as u64;
            for d in &chip.deliveries {
                // Deliveries are stored sorted by (port, cycle), so each
                // port queue is fed in order — no per-delivery re-sort.
                // A vector struck uncorrectable never arrived, so it emits
                // no Delivery event — the conformance profiler sees the
                // aborted window's gap instead of a phantom arrival.
                let mut landed = true;
                let payload = match faults {
                    None => bind(&d.vec),
                    Some(fm) => {
                        let channel = channels.entry(d.link).or_insert_with(|| {
                            Channel::new(LatencyModel::fixed(0), fm.ber_for(d.link))
                        });
                        let (payload, outcome, demoted) =
                            transmit_delivery(fm, channel, d, &bind(&d.vec));
                        LinkMeter::new(&metrics, d.link.0).record(&outcome, demoted);
                        match outcome {
                            FecOutcome::Clean => {}
                            FecOutcome::Corrected { bit } => tracer.instant(
                                d.cycle,
                                lane,
                                EventKind::LinkCorrected {
                                    link: d.link.0,
                                    bit: bit as u32,
                                },
                            ),
                            FecOutcome::Uncorrectable => {
                                let kind = if demoted {
                                    EventKind::LinkDemoted { link: d.link.0 }
                                } else {
                                    EventKind::LinkUncorrectable { link: d.link.0 }
                                };
                                tracer.instant(d.cycle, lane, kind);
                                culprits.push(d.link);
                                landed = false;
                                let key = (d.cycle, d.link, d.vec.transfer as usize);
                                if lost.is_none_or(|worst| key < worst) {
                                    lost = Some(key);
                                }
                            }
                        }
                        payload
                    }
                };
                if landed {
                    // The cycle-coordinate ground truth the conformance
                    // profiler joins against the plan's delivery manifest.
                    tracer.instant(
                        d.cycle,
                        lane,
                        EventKind::Delivery {
                            link: d.link.0,
                            transfer: d.vec.transfer,
                            vector: d.vec.vector,
                        },
                    );
                    // The per-link occupancy heatmap counts exactly the
                    // vectors the trace records as arrived — a vector
                    // struck uncorrectable occupies no heatmap cell.
                    if let Some(s) = self.sampler.as_mut() {
                        s.count(
                            telemetry::series::LINK_DELIVERIES,
                            &format!("link{}", d.link.0),
                            self.trace_offset.saturating_add(d.cycle),
                            1,
                        );
                    }
                }
                sim.deliver_in_order(d.port, d.cycle, payload);
            }
            if tracer.enabled() && !chip.deliveries.is_empty() {
                let first = chip.deliveries.iter().map(|d| d.cycle).min().unwrap();
                let last = chip.deliveries.iter().map(|d| d.cycle).max().unwrap();
                tracer.span(
                    first,
                    (last - first).max(1),
                    lane,
                    EventKind::Deliveries {
                        count: chip.deliveries.len() as u32,
                    },
                );
            }
        }
        if let Some((cycle, link, transfer)) = lost {
            return Err(CosimError::Uncorrectable {
                link,
                transfer,
                cycle,
                fec: FecStats::from_metrics(&metrics.snapshot()),
                culprits,
            });
        }

        // Each chip runs exactly once, levels in topological order. A
        // level is one pool dispatch: worker `w` runs the chips whose
        // compile-time shard lands on `w`, writing retire results into
        // per-chip slots and tallies into its own metrics instance. The
        // serial path runs the identical per-chip code inline into the
        // same slots. Either way, the merge below walks the level in
        // ascending TspId order on this thread, so the first error in
        // (depth, TspId) order — and every trace event — is identical in
        // both modes.
        let threads = if parallel { self.resolved_threads() } else { 1 };
        if threads > 1 && self.pool.as_ref().is_none_or(|p| p.workers() != threads) {
            self.pool = Some(WorkerPool::new(threads));
        }
        if self.slots.len() < plan.chips.len() {
            self.slots.resize_with(plan.chips.len(), SlotCell::default);
        }
        for slot in &mut self.slots {
            *slot.0.get_mut() = None;
        }
        let worker_metrics: Vec<Metrics> = (0..threads).map(|_| Metrics::default()).collect();
        let mut retire_cycles = HashMap::new();
        for level in &plan.levels {
            if level.is_empty() {
                continue;
            }
            if threads <= 1 {
                for &i in level {
                    let chip = &plan.chips[i as usize];
                    let res = run_chip(
                        plan,
                        chip,
                        &mut self.sims[i as usize],
                        payloads,
                        &worker_metrics[0],
                    );
                    *self.slots[i as usize].0.get_mut() = Some(res);
                }
            } else {
                let pool = self.pool.as_ref().expect("pool built above");
                let sims = SimsPtr(self.sims.as_mut_ptr());
                let slots = &self.slots[..];
                pool.dispatch(&|w| {
                    for &i in level {
                        let chip = &plan.chips[i as usize];
                        if chip.shard as usize % threads != w {
                            continue;
                        }
                        // Safety: the shard test above partitions the
                        // level across workers, so index `i` is touched
                        // by this worker alone; the dispatch barrier
                        // publishes the writes to the merge loop.
                        let sim = unsafe { sims.chip(i as usize) };
                        let res = run_chip(plan, chip, sim, payloads, &worker_metrics[w]);
                        unsafe { *slots[i as usize].0.get() = Some(res) };
                    }
                });
            }
            // Merge on the calling thread, ascending TspId order.
            for &i in level {
                let chip = &plan.chips[i as usize];
                let retire = self.slots[i as usize]
                    .0
                    .get_mut()
                    .take()
                    .expect("every level chip is owned by exactly one worker")?;
                retire_cycles.insert(chip.tsp, retire);
                // The per-chip occupancy heatmap samples the same
                // issue→retire span the ChipExec trace event covers, but
                // independently of whether a sink is attached — telemetry
                // works trace-off, and tracing works telemetry-off.
                if let Some(s) = self.sampler.as_mut() {
                    let start = plan.program(chip).first().map_or(0, |i| i.cycle);
                    s.count_span(
                        telemetry::series::CHIP_BUSY,
                        &format!("chip{}", chip.tsp.0),
                        self.trace_offset.saturating_add(start),
                        retire.saturating_sub(start).max(1),
                    );
                }
                if tracer.enabled() {
                    let lane = chip.tsp.0;
                    let instrs = plan.program(chip);
                    let start = instrs.first().map_or(0, |i| i.cycle);
                    tracer.span(
                        start,
                        retire.saturating_sub(start).max(1),
                        lane,
                        EventKind::ChipExec {
                            depth: chip.depth,
                            instructions: instrs.len() as u32,
                        },
                    );
                    if let (Some(first), Some(last)) =
                        (chip.emissions.first(), chip.emissions.last())
                    {
                        // Emissions are stored sorted by (cycle, port).
                        tracer.span(
                            first.cycle,
                            (last.cycle - first.cycle).max(1),
                            lane,
                            EventKind::Emissions {
                                count: chip.emissions.len() as u32,
                            },
                        );
                    }
                }
            }
        }

        // Verify destination SRAM contents bit-for-bit and fingerprint them.
        let dst_digests = verify_destinations(plan, payloads, &self.sims)?;

        metrics.inc(names::COSIM_INSTRUCTIONS, plan.instructions as u64);
        metrics.inc(names::COSIM_DELIVERIES, delivered);
        metrics.set_gauge(names::COSIM_CHIPS, plan.chips.len() as u64);
        // Surface trace loss so downstream consumers (the conformance
        // profiler refuses lossy traces) can see it without holding the
        // sink. Only set when nonzero: a clean instrumented run must report
        // metrics identical to a bare run.
        let trace_dropped = self.sink.as_deref().map_or(0, TraceSink::dropped);
        if trace_dropped > 0 {
            metrics.set_gauge(names::TRACE_DROPPED, trace_dropped);
        }

        // Fold the workers' tallies into the spine's snapshot in
        // worker-index order. `RunMetrics::absorb` is commutative for
        // counters and histograms (entries re-sort to canonical order), so
        // the result is independent of how the shard hash partitioned the
        // chips — which is what keeps this snapshot bit-identical between
        // serial and parallel execution. Workers never touch gauges (the
        // one absorb channel that is order-sensitive).
        let mut snapshot = metrics.snapshot();
        for wm in &worker_metrics {
            snapshot.absorb(&wm.snapshot());
        }

        Ok(CosimReport {
            retire_cycles,
            instructions: plan.instructions,
            arrivals: plan.arrivals.clone(),
            dst_digests,
            metrics: snapshot,
        })
    }
}

/// Runs one chip of one level: executes its slab window, verifies its
/// emission manifest, and tallies its retire cycle into `metrics`.
///
/// This is the *entire* per-chip level body, shared verbatim by the
/// serial path and the pool workers — the two modes differ only in which
/// thread calls it, which is exactly the determinism argument.
fn run_chip(
    plan: &CompiledPlan,
    chip: &ChipPlan,
    sim: &mut ChipSim,
    payloads: &[Vec<Payload>],
    metrics: &Metrics,
) -> Result<u64, CosimError> {
    let retire = sim
        .run_sorted(plan.program(chip))
        .map_err(|error| CosimError::Chip {
            tsp: chip.tsp,
            error,
        })?;
    verify_emissions(chip.tsp, sim, &chip.emissions, payloads)?;
    metrics.observe_cycles(names::COSIM_RETIRE_CYCLES, retire);
    Ok(retire)
}
