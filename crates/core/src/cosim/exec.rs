//! Execute stage of the co-simulation pipeline: binding payload vectors to
//! a [`CompiledPlan`] and running every chip exactly once.
//!
//! The executor owns the per-chip simulators and *resets* them between
//! invocations instead of rebuilding them, so the marginal cost of one
//! more execution is the chip passes themselves — no routing, scheduling,
//! lowering or stream allocation happens here. This is the runtime half of
//! the paper's compile-once / execute-many contract (§5, Fig 17).

use std::collections::HashMap;
use std::sync::Arc;
use tsm_chip::exec::{ChipSim, ExecError, Payload};

use super::plan::{ChipPlan, CompiledPlan, VecRef};
use super::verify::{verify_destinations, verify_emissions};
use super::{CosimError, CosimReport};

/// Reusable payload-binding executor.
///
/// One `PlanExecutor` can run many plans and many payload sets; its chip
/// simulators are reset (allocations retained) at the start of every
/// execution, so no state leaks between invocations and no state is
/// rebuilt. Serial and parallel execution are bit-identical — see the
/// module docs of [`super`].
#[derive(Debug, Default)]
pub struct PlanExecutor {
    /// Per-chip simulators, aligned by index with the executing plan's
    /// chip list (grown on demand), reset and re-bound on every
    /// execution. Indexing by position instead of TSP id keeps the warm
    /// path free of hash lookups.
    sims: Vec<ChipSim>,
}

impl PlanExecutor {
    /// An executor with no chip state yet; simulators are created on first
    /// use and recycled thereafter.
    pub fn new() -> Self {
        PlanExecutor::default()
    }

    /// Binds `payloads` to `plan` and executes it, chips within a hop
    /// level in parallel on scoped threads.
    ///
    /// `payloads[t][v]` is vector `v` of transfer `t` and must match the
    /// plan's [`TransferShape`]s exactly.
    ///
    /// [`TransferShape`]: super::plan::TransferShape
    pub fn execute(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, true)
    }

    /// [`PlanExecutor::execute`] with all chips run on the calling thread,
    /// in ascending (depth, TspId) order. Bit-identical to the parallel
    /// path — the determinism tests and benches compare the two.
    pub fn execute_serial(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
    ) -> Result<CosimReport, CosimError> {
        self.execute_impl(plan, payloads, false)
    }

    fn execute_impl(
        &mut self,
        plan: &CompiledPlan,
        payloads: &[Vec<Payload>],
        parallel: bool,
    ) -> Result<CosimReport, CosimError> {
        // The payloads must match the shapes the plan was compiled for.
        if payloads.len() != plan.shapes.len() {
            return Err(CosimError::PayloadCount {
                expected: plan.shapes.len(),
                got: payloads.len(),
            });
        }
        for (t, (shape, data)) in plan.shapes.iter().zip(payloads).enumerate() {
            if data.len() != shape.vectors as usize {
                return Err(CosimError::PayloadShape {
                    transfer: t,
                    expected: shape.vectors as usize,
                    got: data.len(),
                });
            }
        }

        let bind = |r: &VecRef| Arc::clone(&payloads[r.transfer as usize][r.vector as usize]);

        // Reset-not-rebuild: each chip's simulator keeps its allocations
        // across invocations; preloads and deliveries bind the new
        // payloads by Arc clone (pointer copies, no byte copies).
        if self.sims.len() < plan.chips.len() {
            self.sims.resize_with(plan.chips.len(), ChipSim::default);
        }
        for (chip, sim) in plan.chips.iter().zip(&mut self.sims) {
            sim.reset();
            for p in &chip.preloads {
                sim.preload(p.slice, p.offset, bind(&p.vec));
            }
            for d in &chip.deliveries {
                // Deliveries are stored sorted by (port, cycle), so each
                // port queue is fed in order — no per-delivery re-sort.
                sim.deliver_in_order(d.port, d.cycle, bind(&d.vec));
            }
        }

        // Each chip runs exactly once, levels in topological order;
        // results merge in ascending TspId order whether executed serially
        // or on scoped threads, so the first error in (depth, TspId) order
        // is the one reported in both modes.
        let mut retire_cycles = HashMap::new();
        for level in &plan.levels {
            if level.is_empty() {
                continue;
            }
            let work: Vec<(&ChipPlan, ChipSim)> = level
                .iter()
                .map(|&i| {
                    let chip = &plan.chips[i as usize];
                    // mem::take moves the sim out for the level run; the
                    // slot gets it back below (run_level preserves order).
                    (chip, std::mem::take(&mut self.sims[i as usize]))
                })
                .collect();
            for (k, (chip, result, sim)) in run_level(work, parallel).into_iter().enumerate() {
                self.sims[level[k] as usize] = sim;
                let retire = result.map_err(|error| CosimError::Chip {
                    tsp: chip.tsp,
                    error,
                })?;
                verify_emissions(
                    chip.tsp,
                    &self.sims[level[k] as usize],
                    &chip.emissions,
                    payloads,
                )?;
                retire_cycles.insert(chip.tsp, retire);
            }
        }

        // Verify destination SRAM contents bit-for-bit and fingerprint them.
        let dst_digests = verify_destinations(plan, payloads, &self.sims)?;

        Ok(CosimReport {
            retire_cycles,
            instructions: plan.instructions,
            arrivals: plan.arrivals.clone(),
            dst_digests,
        })
    }
}

/// Executes one depth level of chips, each exactly once.
///
/// In parallel mode the level is split into contiguous chunks over scoped
/// threads (`std::thread::scope`, no extra dependency); joining the chunks
/// in spawn order restores ascending `TspId` order, so the merged result —
/// and therefore every downstream observable — is bit-identical to the
/// serial engine no matter how the OS schedules the workers.
fn run_level(
    work: Vec<(&ChipPlan, ChipSim)>,
    parallel: bool,
) -> Vec<(&ChipPlan, Result<u64, ExecError>, ChipSim)> {
    fn exec_one(
        (chip, mut sim): (&ChipPlan, ChipSim),
    ) -> (&ChipPlan, Result<u64, ExecError>, ChipSim) {
        let result = sim.run(&chip.program);
        (chip, result, sim)
    }

    let threads = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(work.len())
    } else {
        1
    };
    if threads <= 1 {
        return work.into_iter().map(exec_one).collect();
    }
    let chunk_size = work.len().div_ceil(threads);
    let mut chunks: Vec<Vec<(&ChipPlan, ChipSim)>> = Vec::with_capacity(threads);
    let mut it = work.into_iter();
    loop {
        let chunk: Vec<_> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(exec_one).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chip worker panicked"))
            .collect()
    })
}
