//! Verification stage of the co-simulation pipeline: the schedule's
//! *claims* are checked against what the chips actually did.
//!
//! The plan promises, per chip, exactly which vector leaves which port on
//! which cycle; after a chip executes, its real emissions are compared
//! bit-for-bit against that promise before any downstream chip's inputs
//! are trusted. Destination SRAM is additionally checked bit-for-bit at
//! the end of the run and fingerprinted for the determinism tests.

use tsm_chip::exec::{ChipSim, Emission, Payload};
use tsm_topology::TspId;

use super::plan::{CompiledPlan, PlannedEmission};
use super::CosimError;

fn emission_key(e: &Emission) -> (u64, u8) {
    (e.cycle, e.port)
}

/// Compares a chip's actual emissions against the schedule's promise.
///
/// Both sides are ordered by (cycle, port) — a unique key, since a port
/// engine serializes its sends — so the comparison is order-canonical.
/// The promise is stored pre-sorted in the plan; actual emissions come out
/// of the executor already cycle-ordered in practice, so the common case
/// compares in place without allocating or sorting.
pub(super) fn verify_emissions(
    tsp: TspId,
    sim: &ChipSim,
    promised: &[PlannedEmission],
    payloads: &[Vec<Payload>],
) -> Result<(), CosimError> {
    debug_assert!(
        promised
            .windows(2)
            .all(|w| (w[0].cycle, w[0].port) <= (w[1].cycle, w[1].port)),
        "plan emissions must be (cycle, port)-sorted"
    );
    let got = sim.emissions();
    if got
        .windows(2)
        .all(|w| emission_key(&w[0]) <= emission_key(&w[1]))
    {
        check_emissions(tsp, promised, payloads, got.len(), got.iter())
    } else {
        let mut sorted: Vec<&Emission> = got.iter().collect();
        sorted.sort_by_key(|e| emission_key(e));
        check_emissions(tsp, promised, payloads, sorted.len(), sorted.into_iter())
    }
}

fn check_emissions<'a>(
    tsp: TspId,
    promised: &[PlannedEmission],
    payloads: &[Vec<Payload>],
    got_len: usize,
    mut got: impl Iterator<Item = &'a Emission>,
) -> Result<(), CosimError> {
    for i in 0..promised.len().max(got_len) {
        match (promised.get(i), got.next()) {
            (Some(want), Some(g)) => {
                // A correct chip pass forwards the very handle that was
                // bound in, so pointer equality usually settles the
                // payload check without touching the bytes.
                let wv = &payloads[want.vec.transfer as usize][want.vec.vector as usize];
                let payload_ok = Payload::ptr_eq(wv, &g.vector) || wv.as_ref() == g.vector.as_ref();
                if want.cycle != g.cycle || want.port != g.port || !payload_ok {
                    return Err(CosimError::EmissionMismatch {
                        tsp,
                        cycle: g.cycle.min(want.cycle),
                        port: g.port,
                    });
                }
            }
            (Some(want), None) => {
                return Err(CosimError::EmissionMismatch {
                    tsp,
                    cycle: want.cycle,
                    port: want.port,
                });
            }
            (None, Some(g)) => {
                return Err(CosimError::EmissionMismatch {
                    tsp,
                    cycle: g.cycle,
                    port: g.port,
                });
            }
            (None, None) => unreachable!(),
        }
    }
    Ok(())
}

/// Checks every destination's SRAM region bit-for-bit against the bound
/// payloads and returns the per-transfer FNV fingerprints of the delivered
/// bytes (the serial-vs-parallel determinism tests compare these).
///
/// `sims` is aligned by index with `plan.chips`; destinations resolve by
/// binary search over the plan's (TspId-ascending) chip list.
pub(super) fn verify_destinations(
    plan: &CompiledPlan,
    payloads: &[Vec<Payload>],
    sims: &[ChipSim],
) -> Result<Vec<u64>, CosimError> {
    let mut dst_digests = Vec::with_capacity(plan.shapes.len());
    for (idx, (shape, data)) in plan.shapes.iter().zip(payloads).enumerate() {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        if !data.is_empty() {
            let chip = plan
                .chips
                .binary_search_by_key(&shape.to, |c| c.tsp)
                .expect("destination simulated");
            let sim = &sims[chip];
            for (v, expected) in data.iter().enumerate() {
                match sim.sram_handle(shape.dst_slice, shape.dst_offset + v as u16) {
                    Some(got)
                        if Payload::ptr_eq(got, expected) || got.as_ref() == expected.as_ref() =>
                    {
                        acc = (acc ^ got.digest()).wrapping_mul(0x100_0000_01b3);
                    }
                    _ => {
                        return Err(CosimError::DataMismatch {
                            transfer: idx,
                            vector: v,
                        })
                    }
                }
            }
        }
        dst_digests.push(acc);
    }
    Ok(dst_digests)
}
