//! Execution reports.

use tsm_fault::inject::FecStats;

/// The outcome of one executed inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionReport {
    /// The compiler's cycle-exact estimate (schedule span).
    pub estimated_cycles: u64,
    /// The measured wall-clock, in cycles (differs from the estimate only
    /// through PCIe invocation variance and replays).
    pub measured_cycles: u64,
    /// FEC tally of the (final) run.
    pub fec: FecStats,
    /// Replays consumed.
    pub replays: u32,
    /// False if the fault persisted beyond the replay budget.
    pub succeeded: bool,
}

impl ExecutionReport {
    /// Measured latency in seconds.
    pub fn measured_seconds(&self) -> f64 {
        tsm_isa::timing::cycles_to_seconds(self.measured_cycles)
    }

    /// Estimated latency in seconds.
    pub fn estimated_seconds(&self) -> f64 {
        tsm_isa::timing::cycles_to_seconds(self.estimated_cycles)
    }

    /// Relative error of the compiler estimate vs the measurement
    /// (Fig 17's "within 2%" metric).
    pub fn estimate_error(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        (self.estimated_cycles as f64 - self.measured_cycles as f64).abs()
            / self.measured_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_error_math() {
        let r = ExecutionReport {
            estimated_cycles: 102,
            measured_cycles: 100,
            fec: FecStats::default(),
            replays: 0,
            succeeded: true,
        };
        assert!((r.estimate_error() - 0.02).abs() < 1e-12);
        assert!(r.measured_seconds() > 0.0);
        assert!(r.estimated_seconds() > r.measured_seconds());
    }

    #[test]
    fn zero_measurement_does_not_divide_by_zero() {
        let r = ExecutionReport {
            estimated_cycles: 0,
            measured_cycles: 0,
            fec: FecStats::default(),
            replays: 0,
            succeeded: true,
        };
        assert_eq!(r.estimate_error(), 0.0);
    }
}
