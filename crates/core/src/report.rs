//! Execution reports.

use tsm_fault::inject::FecStats;
use tsm_trace::{names, RunMetrics};

/// The outcome of one executed inference.
///
/// The FEC tally and replay count are views over the attached
/// [`RunMetrics`] snapshot — the same registry the co-simulation and
/// runtime layers aggregate into — so there is exactly one source of
/// truth for "what happened on the wire".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionReport {
    /// The compiler's cycle-exact estimate (schedule span).
    pub estimated_cycles: u64,
    /// The measured wall-clock, in cycles (differs from the estimate only
    /// through PCIe invocation variance and replays).
    pub measured_cycles: u64,
    /// False if the fault persisted beyond the replay budget.
    pub succeeded: bool,
    /// Aggregated metrics snapshot for this execution.
    pub metrics: RunMetrics,
}

impl ExecutionReport {
    /// FEC tally of the (final) run, derived from [`ExecutionReport::metrics`].
    pub fn fec(&self) -> FecStats {
        FecStats::from_metrics(&self.metrics)
    }

    /// Replays consumed, derived from [`ExecutionReport::metrics`].
    pub fn replays(&self) -> u32 {
        self.metrics.counter(names::RT_REPLAYS) as u32
    }

    /// Measured latency in seconds.
    pub fn measured_seconds(&self) -> f64 {
        tsm_isa::timing::cycles_to_seconds(self.measured_cycles)
    }

    /// Estimated latency in seconds.
    pub fn estimated_seconds(&self) -> f64 {
        tsm_isa::timing::cycles_to_seconds(self.estimated_cycles)
    }

    /// Relative error of the compiler estimate vs the measurement
    /// (Fig 17's "within 2%" metric).
    pub fn estimate_error(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        (self.estimated_cycles as f64 - self.measured_cycles as f64).abs()
            / self.measured_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_trace::Metrics;

    #[test]
    fn estimate_error_math() {
        let r = ExecutionReport {
            estimated_cycles: 102,
            measured_cycles: 100,
            succeeded: true,
            metrics: RunMetrics::default(),
        };
        assert!((r.estimate_error() - 0.02).abs() < 1e-12);
        assert!(r.measured_seconds() > 0.0);
        assert!(r.estimated_seconds() > r.measured_seconds());
    }

    #[test]
    fn zero_measurement_does_not_divide_by_zero() {
        let r = ExecutionReport {
            estimated_cycles: 0,
            measured_cycles: 0,
            succeeded: true,
            metrics: RunMetrics::default(),
        };
        assert_eq!(r.estimate_error(), 0.0);
    }

    #[test]
    fn fec_and_replays_are_metric_views() {
        let m = Metrics::default();
        let stats = FecStats {
            clean: 7,
            corrected: 2,
            uncorrectable: 1,
        };
        stats.record_into(&m);
        m.inc(names::RT_REPLAYS, 3);
        let r = ExecutionReport {
            estimated_cycles: 10,
            measured_cycles: 10,
            succeeded: true,
            metrics: m.snapshot(),
        };
        assert_eq!(r.fec(), stats);
        assert_eq!(r.replays(), 3);
    }
}
