//! System assembly and the runtime execution model.

use crate::report::ExecutionReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsm_compiler::graph::{Graph, OpKind};
use tsm_compiler::schedule::{compile, CompileError, CompileOptions, CompiledProgram};
use tsm_fault::inject::{inject_schedule, InjectionConfig};
use tsm_fault::replay::{run_with_replay, ReplayOutcome, ReplayPolicy};
use tsm_sync::align::InitialAlignment;
use tsm_topology::{Topology, TopologyError, TspId};
use tsm_trace::{names, Metrics};

/// Configuration of a multi-TSP deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Maximum clock error of any TSP's oscillator, ppm.
    pub max_clock_ppm: f64,
    /// Bit error rate of every C2C link.
    pub bit_error_rate: f64,
    /// Replay budget for uncorrectable errors.
    pub max_replays: u32,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            max_clock_ppm: 100.0,
            bit_error_rate: 1e-9,
            max_replays: 2,
        }
    }
}

/// Errors from system construction or compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// Bad topology parameters.
    Topology(TopologyError),
    /// Compilation failed.
    Compile(CompileError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Topology(e) => write!(f, "topology: {e}"),
            SystemError::Compile(e) => write!(f, "compile: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<TopologyError> for SystemError {
    fn from(e: TopologyError) -> Self {
        SystemError::Topology(e)
    }
}

impl From<CompileError> for SystemError {
    fn from(e: CompileError) -> Self {
        SystemError::Compile(e)
    }
}

/// A deployed multi-TSP system.
#[derive(Debug, Clone)]
pub struct System {
    topo: Topology,
    config: SystemConfig,
}

impl System {
    /// One 8-TSP GroqNode.
    pub fn single_node() -> System {
        System {
            topo: Topology::single_node(),
            config: SystemConfig::default(),
        }
    }

    /// `n` fully-connected nodes (2–33; up to 264 TSPs).
    pub fn with_nodes(n: usize) -> Result<System, SystemError> {
        Ok(System {
            topo: Topology::fully_connected_nodes(n)?,
            config: SystemConfig::default(),
        })
    }

    /// `r` racks in the Dragonfly regime (2–145; up to 10,440 TSPs).
    pub fn with_racks(r: usize) -> Result<System, SystemError> {
        Ok(System {
            topo: Topology::rack_dragonfly(r)?,
            config: SystemConfig::default(),
        })
    }

    /// Replaces the runtime configuration (builder style).
    pub fn with_config(mut self, config: SystemConfig) -> System {
        self.config = config;
        self
    }

    /// The wired topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access (fault experiments).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// The runtime configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Plans the initial program alignment from TSP 0 (paper §3.2): the
    /// spanning tree plus the `(⌊L/period⌋+1)·h` epoch overhead paid once
    /// before a distributed program launches.
    pub fn plan_alignment(&self) -> InitialAlignment {
        InitialAlignment::plan(&self.topo, TspId(0))
    }

    /// Compiles a computation graph into a cycle-exact schedule.
    pub fn compile(
        &self,
        graph: &Graph,
        options: CompileOptions,
    ) -> Result<CompiledProgram, SystemError> {
        Ok(compile(graph, &self.topo, options)?)
    }

    /// Executes a compiled program once under the runtime model.
    ///
    /// The network itself is deterministic — its contribution to the
    /// measured latency equals the compiler's estimate to the cycle. What
    /// varies run-to-run is (a) the PCIe host transfers ("the extended
    /// invocation time of the PCIe data transfer", Fig 17 discussion) and
    /// (b) transmission errors, which FEC repairs in situ or the runtime
    /// absorbs by replay.
    pub fn execute(&self, program: &CompiledProgram, seed: u64) -> ExecutionReport {
        self.execute_graph_aware(program, None, seed)
    }

    /// Like [`System::execute`], but with the graph available so PCIe
    /// jitter applies only when host I/O is actually present.
    pub fn execute_with_graph(
        &self,
        program: &CompiledProgram,
        graph: &Graph,
        seed: u64,
    ) -> ExecutionReport {
        self.execute_graph_aware(program, Some(graph), seed)
    }

    fn execute_graph_aware(
        &self,
        program: &CompiledProgram,
        graph: Option<&Graph>,
        seed: u64,
    ) -> ExecutionReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let estimated = program.span_cycles;

        // PCIe invocation variance: the host-side DMA engine returns a bit
        // earlier or later than the worst case the compiler budgeted. The
        // compiler's estimate is an upper bound (Fig 17: "all of them
        // returning by" the estimate), with the bulk of runs within 2 %.
        let has_host_io = graph.is_none_or(|g| {
            g.nodes()
                .iter()
                .any(|n| matches!(n.kind, OpKind::HostInput { .. } | OpKind::HostOutput { .. }))
        });
        let measured = if has_host_io && estimated > 0 {
            let z: f64 = {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let deficit_frac = (0.012 + 0.008 * z).clamp(0.0, 0.06);
            estimated - (estimated as f64 * deficit_frac) as u64
        } else {
            estimated
        };

        // Drive every scheduled wire packet through the FEC channel; on an
        // uncorrectable error the runtime replays the inference.
        let injection = InjectionConfig {
            bit_error_rate: self.config.bit_error_rate,
        };
        let reservations = program.occupancy.reservations();
        let mut attempts = 0u32;
        let outcome = run_with_replay(
            ReplayPolicy {
                max_replays: self.config.max_replays,
            },
            |_| {
                attempts += 1;
                inject_schedule(&self.topo, reservations, injection, &mut rng)
            },
        );
        let (fec, replays, succeeded) = match &outcome {
            ReplayOutcome::CleanFirstTry { stats } => (*stats, 0, true),
            ReplayOutcome::RecoveredAfterReplay { replays, stats } => (*stats, *replays, true),
            ReplayOutcome::Persistent { attempts } => (Default::default(), attempts - 1, false),
        };
        // A replay re-runs the whole inference.
        let measured = measured * (replays as u64 + 1);

        let metrics = Metrics::default();
        fec.record_into(&metrics);
        metrics.inc(names::RT_ATTEMPTS, attempts as u64);
        metrics.inc(names::RT_REPLAYS, replays as u64);

        ExecutionReport {
            estimated_cycles: estimated,
            measured_cycles: measured,
            succeeded,
            metrics: metrics.snapshot(),
        }
    }

    /// Executes a program `runs` times with distinct seeds (the Fig 17
    /// histogram loop).
    pub fn execute_many(
        &self,
        program: &CompiledProgram,
        graph: &Graph,
        runs: usize,
        base_seed: u64,
    ) -> Vec<ExecutionReport> {
        (0..runs as u64)
            .map(|i| self.execute_with_graph(program, graph, base_seed.wrapping_add(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_compiler::graph::OpKind;

    fn trivial_graph(cycles: u64) -> Graph {
        let mut g = Graph::new();
        g.add(TspId(0), OpKind::Compute { cycles }, vec![]).unwrap();
        g
    }

    #[test]
    fn compile_and_execute_roundtrip() {
        let sys = System::single_node();
        let p = sys
            .compile(&trivial_graph(5000), CompileOptions::default())
            .unwrap();
        let r = sys.execute(&p, 1);
        assert_eq!(r.estimated_cycles, 5000);
        assert!(r.succeeded);
        assert_eq!(r.replays(), 0);
    }

    #[test]
    fn network_only_programs_measure_exactly_the_estimate() {
        // No host I/O, no errors: the system is bit-deterministic.
        let sys = System::single_node().with_config(SystemConfig {
            bit_error_rate: 0.0,
            ..Default::default()
        });
        let mut g = Graph::new();
        g.add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(1),
                bytes: 64_000,
                allow_nonminimal: true,
            },
            vec![],
        )
        .unwrap();
        let p = sys.compile(&g, CompileOptions::default()).unwrap();
        for seed in 0..20 {
            let r = sys.execute_with_graph(&p, &g, seed);
            assert_eq!(r.measured_cycles, r.estimated_cycles, "seed {seed}");
        }
    }

    #[test]
    fn host_io_introduces_bounded_variance() {
        let sys = System::single_node();
        let mut g = trivial_graph(1_000_000);
        g.add(TspId(0), OpKind::HostInput { bytes: 1 << 20 }, vec![])
            .unwrap();
        let p = sys.compile(&g, CompileOptions::default()).unwrap();
        let reports = sys.execute_many(&p, &g, 200, 7);
        let est = reports[0].estimated_cycles;
        assert!(
            reports.iter().all(|r| r.measured_cycles <= est),
            "estimate is an upper bound"
        );
        assert!(reports
            .iter()
            .all(|r| r.measured_cycles >= est - est * 6 / 100));
        let distinct: std::collections::HashSet<u64> =
            reports.iter().map(|r| r.measured_cycles).collect();
        assert!(
            distinct.len() > 10,
            "PCIe jitter should vary the measurement"
        );
    }

    #[test]
    fn execution_is_seed_deterministic() {
        let sys = System::single_node();
        let mut g = trivial_graph(10_000);
        g.add(TspId(0), OpKind::HostInput { bytes: 4096 }, vec![])
            .unwrap();
        let p = sys.compile(&g, CompileOptions::default()).unwrap();
        let a = sys.execute_with_graph(&p, &g, 99);
        let b = sys.execute_with_graph(&p, &g, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn harsh_links_force_replays() {
        let sys = System::single_node().with_config(SystemConfig {
            bit_error_rate: 5e-4,
            max_replays: 1,
            ..Default::default()
        });
        let mut g = Graph::new();
        g.add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(1),
                bytes: 320_000,
                allow_nonminimal: false,
            },
            vec![],
        )
        .unwrap();
        let p = sys.compile(&g, CompileOptions::default()).unwrap();
        let r = sys.execute_with_graph(&p, &g, 3);
        // With BER 5e-4 over 1000 packets, uncorrectables are certain; one
        // replay cannot save it.
        assert!(!r.succeeded);
    }

    #[test]
    fn alignment_plan_reaches_all_tsps() {
        let sys = System::with_nodes(4).unwrap();
        let plan = sys.plan_alignment();
        assert_eq!(plan.tree.reached(), 32);
        assert!(plan.overhead_epochs > 0);
    }

    #[test]
    fn rack_scale_system_constructs() {
        let sys = System::with_racks(2).unwrap();
        assert_eq!(sys.topology().num_tsps(), 144);
    }
}
