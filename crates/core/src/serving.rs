//! Deterministic multi-tenant serving frontend over the staged launch
//! pipeline.
//!
//! The paper's deployments run one compiled schedule thousands of times
//! under sustained traffic (§5); what matters there is tail latency under
//! open-loop load, not peak throughput. This module puts a request queue
//! in front of [`LaunchEngine`](crate::launch::LaunchEngine):
//!
//! - [`WorkQueue`] — totally ordered by `(priority, deadline,
//!   insertion_seq)`, with [`WorkQueue::try_push`] backpressure and
//!   admission control (queue capacity + per-tenant quota).
//! - [`Server`] — a virtual-time discrete-event loop: seeded, no wall
//!   clock anywhere, so a whole serving run is bit-reproducible from its
//!   config. Requests batch into launches under a configurable batch
//!   window; each batch dispatches through [`Runtime::launch_at`] at its
//!   dispatch cycle and its service time is the launch's
//!   [`LaunchOutcome::timeline_cycles`](crate::runtime::LaunchOutcome::timeline_cycles).
//! - Per-request enqueue→complete latency lands in
//!   [`CycleHistogram`]s (global and per-tenant) and as
//!   `Request*`/`Batch*` events on [`SERVING_LANE`], kept off the chip
//!   and runtime lanes so launch traces stay comparable with or without
//!   a frontend.
//!
//! # Batch-window semantics
//!
//! The window opens when a request enters an *empty* queue at cycle `c`:
//! the next dispatch happens at `max(server_free_at, c + batch_window)`.
//! A dispatch pops the queue head and folds in successive same-model
//! requests (up to `max_batch`), never reordering past a
//! different-model entry — strict queue order is preserved.

use crate::flight::{FlightConfig, FlightRecorder, IncidentReport, IncidentTrigger};
use crate::runtime::{mix64, ExecMode, Runtime, RuntimeError, EPOCH_GAP_CYCLES};
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;
use tsm_compiler::graph::Graph;
use tsm_trace::profile::profile;
use tsm_trace::telemetry::{self, Sampler, Telemetry, TelemetryConfig};
use tsm_trace::{
    names, AttributionReport, CycleHistogram, EventKind, LatencyBreakdown, Metrics, RingSink,
    RunMetrics, ShedReason, Tracer, SERVING_LANE,
};

/// Why admission control rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity.
    QueueFull,
    /// The tenant already holds its full quota of queued requests.
    TenantOverQuota,
}

/// One queue entry; ordered by `(priority, deadline, seq)`. `seq` is
/// unique, so the order is total.
#[derive(Debug, Clone)]
struct Queued<T> {
    priority: u8,
    deadline: u64,
    seq: u64,
    tenant: u32,
    item: T,
}

impl<T> Queued<T> {
    fn key(&self) -> (u8, u64, u64) {
        (self.priority, self.deadline, self.seq)
    }
}

impl<T> PartialEq for Queued<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Queued<T> {}
impl<T> PartialOrd for Queued<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Queued<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A bounded priority queue totally ordered by
/// `(priority, deadline, insertion_seq)` — lower priority value first,
/// earlier deadline first, FIFO within ties. Admission control is
/// explicit: [`WorkQueue::try_push`] refuses (backpressure) instead of
/// growing without bound, and a per-tenant quota keeps one bursting
/// tenant from squeezing everyone else out of the queue.
#[derive(Debug, Clone)]
pub struct WorkQueue<T> {
    heap: BinaryHeap<Reverse<Queued<T>>>,
    capacity: usize,
    tenant_quota: usize,
    per_tenant: HashMap<u32, usize>,
    next_seq: u64,
}

impl<T> WorkQueue<T> {
    /// An empty queue admitting at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        WorkQueue {
            heap: BinaryHeap::new(),
            capacity,
            tenant_quota: usize::MAX,
            per_tenant: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Caps any single tenant's queued entries (builder style).
    pub fn with_tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = quota;
        self
    }

    /// Admits an entry, or refuses with the reason. Refused entries cost
    /// nothing and leave the queue unchanged.
    pub fn try_push(
        &mut self,
        priority: u8,
        deadline: u64,
        tenant: u32,
        item: T,
    ) -> Result<(), AdmitError> {
        if self.heap.len() >= self.capacity {
            return Err(AdmitError::QueueFull);
        }
        let count = self.per_tenant.entry(tenant).or_insert(0);
        if *count >= self.tenant_quota {
            return Err(AdmitError::TenantOverQuota);
        }
        *count += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Queued {
            priority,
            deadline,
            seq,
            tenant,
            item,
        }));
        Ok(())
    }

    /// Removes and returns the least entry in the total order.
    pub fn pop(&mut self) -> Option<T> {
        let q = self.heap.pop()?.0;
        match self.per_tenant.entry(q.tenant) {
            Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                // Remove exhausted tenants outright: a long-running server
                // must stay bounded by the tenants currently queued, not
                // by every tenant id ever seen.
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(_) => unreachable!("tenant counted on push"),
        }
        Some(q.item)
    }

    /// The least entry, without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.heap.peek().map(|r| &r.0.item)
    }

    /// Queued entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tenants with at least one queued entry — the size of the
    /// per-tenant accounting map, which [`WorkQueue::pop`] keeps bounded
    /// by removing entries that reach zero.
    pub fn tracked_tenants(&self) -> usize {
        self.per_tenant.len()
    }
}

/// One offered inference request, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival cycle.
    pub at: u64,
    /// Tenant the request belongs to (fairness accounting key).
    pub tenant: u32,
    /// Model id, as returned by [`Server::add_model`].
    pub model: u32,
    /// Priority class; lower is more urgent.
    pub priority: u8,
    /// Cycles after arrival by which the tenant wants the answer;
    /// `deadline = at + deadline_slack` is the queue-ordering key after
    /// priority, and it is enforced at dispatch time: a request whose
    /// deadline has already passed when the dispatcher reaches it is
    /// dropped as [`RequestOutcome::Expired`] instead of being launched.
    /// (Expiry is checked in virtual time, so it is deterministic.)
    pub deadline_slack: u64,
}

/// Serving knobs. Everything is virtual cycles and seeds — a
/// [`Server::serve`] run is a pure function of `(config, offered
/// requests, runtime state)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Cycles the dispatcher waits after a request enters an empty queue
    /// before launching, hoping to batch followers. 0 = dispatch as soon
    /// as the server is free.
    pub batch_window: u64,
    /// Most requests folded into one launch.
    pub max_batch: usize,
    /// Work-queue admission capacity.
    pub queue_capacity: usize,
    /// Per-tenant cap on queued requests ([`AdmitError::TenantOverQuota`]).
    pub tenant_quota: usize,
    /// Base seed; batch `i`'s launch seed is derived from it (recorded in
    /// [`BatchRecord::seed`]).
    pub seed: u64,
    /// Certify every launch against the conformance profiler
    /// ([`tsm_trace::profile`]). Requires [`ExecMode::Datapath`]. Each
    /// launch then runs base-0 into a private scratch sink (the serving
    /// timeline keeps only the `Request*`/`Batch*` events), and
    /// [`BatchRecord::certified`] reports the verdict.
    pub certify: bool,
    /// Windowed telemetry sampling ([`tsm_trace::telemetry`]). `Some`
    /// makes [`ServeReport::telemetry`] carry per-tenant throughput,
    /// queue-depth, shed/expired and SLO-attainment series plus the
    /// launches' link/chip heatmaps, all on `window`-cycle windows of the
    /// serving timeline. `None` (the default) is the pre-feature single
    /// branch: the report is bit-identical to a build without the
    /// feature. Sampling never changes event sequences or any other
    /// report field — it only observes.
    pub telemetry: Option<TelemetryConfig>,
    /// Per-request causal latency attribution
    /// ([`tsm_trace::attribution`]). `true` makes
    /// [`ServeReport::attribution`] carry one
    /// [`LatencyBreakdown`] per served request — stage components
    /// summing *exactly* to the measured enqueue→complete latency,
    /// verified for every request — aggregated into per-tenant/per-stage
    /// metrics with a critical-stage verdict. `false` (the default) is
    /// the pre-feature single branch: outcomes, traces and exporter
    /// bytes stay bit-identical to a build without the feature.
    pub attribution: bool,
    /// Bounded incident capture ([`crate::flight`]). `Some` arms a
    /// [`FlightRecorder`] for the run: sheds, in-queue expiries, SLO
    /// misses, faulted launches (replays/failovers) and Deviant
    /// certified batches snapshot the serving trace tail, the residency
    /// manager, and the queue state into [`ServeReport::incidents`],
    /// with the telemetry windows bracketing each incident attached at
    /// finish. `None` (the default) records nothing and changes
    /// nothing.
    pub flight: Option<FlightConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: 0,
            max_batch: 8,
            queue_capacity: 64,
            tenant_quota: usize::MAX,
            seed: 0,
            certify: false,
            telemetry: None,
            attribution: false,
            flight: None,
        }
    }
}

/// What happened to one offered request, indexed as offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Admission control refused it.
    Shed,
    /// Its deadline had already passed when the dispatcher reached it
    /// (in virtual time), so it was dropped unlaunched.
    Expired {
        /// The deadline that had passed.
        deadline: u64,
        /// Dispatch cycle at which the expiry was detected.
        at: u64,
    },
    /// Served in `batch`, completing at `completion` with
    /// enqueue→complete `latency` cycles.
    Served {
        /// Batch index that carried the request.
        batch: u32,
        /// Completion cycle.
        completion: u64,
        /// Enqueue→complete latency in cycles.
        latency: u64,
    },
}

/// One dispatched batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Monotone batch index within the serve run.
    pub batch: u32,
    /// Model the batch ran.
    pub model: u32,
    /// Requests folded in.
    pub size: u32,
    /// Dispatch cycle.
    pub dispatch: u64,
    /// Completion cycle (`dispatch + ` the launch's timeline width).
    pub completion: u64,
    /// The launch seed used — relaunching the model graph with this seed
    /// reproduces the batch's [`LaunchOutcome`](crate::LaunchOutcome)
    /// exactly (the launch-vs-serve identity tests do).
    pub seed: u64,
    /// Execution attempts the launch consumed (1 = clean first try).
    pub attempts: u32,
    /// Conformance verdict when [`ServeConfig::certify`] was on.
    pub certified: Option<bool>,
    /// The batch's full launch record — by the engine's determinism,
    /// bit-identical to `Runtime::launch(graph, seed)` standalone (the
    /// `serve_identity` suite asserts it).
    pub outcome: crate::runtime::LaunchOutcome,
}

/// Per-tenant fairness accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: u32,
    /// Requests the tenant offered.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed by admission control
    /// (`shed_queue_full + shed_over_quota`).
    pub shed: u64,
    /// Sheds caused by queue backpressure ([`AdmitError::QueueFull`]).
    pub shed_queue_full: u64,
    /// Sheds caused by the tenant quota
    /// ([`AdmitError::TenantOverQuota`]).
    pub shed_over_quota: u64,
    /// Requests dropped at dispatch time because their deadline had
    /// passed.
    pub expired: u64,
    /// Enqueue→complete latency distribution of the served requests.
    pub latency: CycleHistogram,
}

/// The complete, comparable record of one [`Server::serve`] run.
/// `PartialEq` compares everything — two runs of the same config over the
/// same offered load must be `==` (asserted by the reproducibility tests).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests offered.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests dropped at dispatch time because their deadline had
    /// passed.
    pub expired: u64,
    /// Every dispatched batch, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Per-request outcome, indexed as offered.
    pub outcomes: Vec<RequestOutcome>,
    /// Global enqueue→complete latency distribution.
    pub latency: CycleHistogram,
    /// Per-tenant accounting, ascending tenant id.
    pub tenants: Vec<TenantStats>,
    /// Cycle of the last completion (0 when nothing was served).
    pub makespan: u64,
    /// `serve.*` counters/histograms plus the deepest queue depth seen,
    /// and the run's `residency.*` delta (plan-cache hits/misses/
    /// evictions accrued by this serve run, with the resident gauges).
    pub metrics: RunMetrics,
    /// Windowed time series of the run when [`ServeConfig::telemetry`]
    /// was set: per-tenant `serve.throughput`/`serve.enqueued`/
    /// `serve.shed`/`serve.expired` counters, `serve.slo.met`/
    /// `serve.slo.missed` (a request meets its SLO when it completes by
    /// its deadline), the `serve.queue_depth` gauge, and — in
    /// non-certify runs — the launches' `link.deliveries`/
    /// `chip.busy_cycles` heatmaps merged onto the serving timeline.
    /// `None` when telemetry is off.
    pub telemetry: Option<Telemetry>,
    /// Per-request latency breakdowns plus their per-tenant/per-stage
    /// aggregation when [`ServeConfig::attribution`] was on. Every
    /// breakdown has been verified: its stage components sum exactly to
    /// the request's measured latency. `None` when attribution is off.
    pub attribution: Option<AttributionReport>,
    /// Incidents captured by the [`FlightRecorder`] when
    /// [`ServeConfig::flight`] was set, in trigger order. `None` when
    /// the recorder was off.
    pub incidents: Option<Vec<IncidentReport>>,
}

/// A model registered with the server: a builder from batch size to the
/// logical graph that serves it.
type ModelBuilder = Box<dyn Fn(u32) -> Graph>;

/// The deterministic serving frontend: a [`WorkQueue`] feeding batches
/// into one [`Runtime`].
pub struct Server {
    rt: Runtime,
    cfg: ServeConfig,
    models: Vec<ModelBuilder>,
    /// Display names for telemetry series labels, keyed by tenant id.
    /// Unnamed tenants label as `tenant{id}`.
    tenant_names: BTreeMap<u32, String>,
}

impl Server {
    /// Wraps `rt` with serving config `cfg`. Register models with
    /// [`Server::add_model`] before serving.
    pub fn new(rt: Runtime, cfg: ServeConfig) -> Self {
        Server {
            rt,
            cfg,
            models: Vec::new(),
            tenant_names: BTreeMap::new(),
        }
    }

    /// Gives tenant `id` a display name, used as the label of its
    /// telemetry series (`serve.throughput[name]`, …). Purely
    /// presentational: accounting and ordering key on the id, and names
    /// pass through the JSON/Perfetto escapers, so hostile strings are
    /// safe. Unnamed tenants label as `tenant{id}`.
    pub fn name_tenant(&mut self, id: u32, name: &str) {
        self.tenant_names.insert(id, name.to_string());
    }

    /// The telemetry label of tenant `id`.
    pub fn tenant_label(&self, id: u32) -> String {
        self.tenant_names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("tenant{id}"))
    }

    /// Registers a model: `builder(batch)` must return the logical graph
    /// serving a batch of that size. Returns the model id requests name.
    pub fn add_model(&mut self, builder: impl Fn(u32) -> Graph + 'static) -> u32 {
        self.models.push(Box::new(builder));
        (self.models.len() - 1) as u32
    }

    /// The serving config.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The wrapped runtime (inspection).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The wrapped runtime, mutable (e.g. to degrade links mid-story).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }

    /// Unwraps the runtime.
    pub fn into_runtime(self) -> Runtime {
        self.rt
    }

    /// Serves an offered request timeline to completion and returns the
    /// full run record. Requests are processed in arrival order (stable
    /// for equal cycles); arrivals strictly before a pending dispatch
    /// point are enqueued first, so a request can join a batch window
    /// that is still open.
    ///
    /// Pure virtual time: the same `(config, offered, runtime)` always
    /// produces the same report, bit for bit.
    pub fn serve(&mut self, offered: &[Request]) -> Result<ServeReport, RuntimeError> {
        if self.cfg.certify && self.rt.exec_mode() != ExecMode::Datapath {
            return Err(RuntimeError::Execution(
                "certify requires ExecMode::Datapath (statistical launches carry no delivery manifest)"
                    .into(),
            ));
        }
        // Arrival order, stable across equal cycles.
        let mut order: Vec<usize> = (0..offered.len()).collect();
        order.sort_by_key(|&i| offered[i].at);

        let metrics = Metrics::default();
        let user_sink = self.rt.sink.clone();
        let mut stracer = Tracer::new(user_sink.as_deref());

        // Telemetry is observation-only: every branch below that touches
        // the sampler does nothing else, so a `telemetry: None` run is
        // bit-identical to a pre-feature build (pinned by the
        // `telemetry` integration suite). Enabling it also arms the
        // runtime's executor, so each batch's launch carries link/chip
        // heatmaps for the serving sampler to merge.
        let mut sampler = self.cfg.telemetry.map(Sampler::new);
        if let Some(tc) = self.cfg.telemetry {
            self.rt.set_telemetry(tc);
        }
        // Attribution and the flight recorder are observation-only too:
        // both collect into their own side structures (`ServeReport::
        // attribution` / `ServeReport::incidents`), never into the serve
        // metrics or the trace, so disabling either is bit-identical to a
        // pre-feature build (pinned by the attribution/flight suites).
        let mut breakdowns: Option<Vec<LatencyBreakdown>> = self.cfg.attribution.then(Vec::new);
        let mut flight = self.cfg.flight.map(FlightRecorder::new);
        let queue_capacity = self.cfg.queue_capacity as u64;
        let tenant_quota = self.cfg.tenant_quota as u64;
        let tenant_names = self.tenant_names.clone();
        let label_of = |t: u32| -> String {
            tenant_names
                .get(&t)
                .cloned()
                .unwrap_or_else(|| format!("tenant{t}"))
        };

        #[derive(Debug, Clone, Copy)]
        struct Pending {
            id: u32,
            model: u32,
            tenant: u32,
            arrival: u64,
            deadline: u64,
        }
        let mut queue: WorkQueue<Pending> =
            WorkQueue::new(self.cfg.queue_capacity).with_tenant_quota(self.cfg.tenant_quota);

        let mut outcomes = vec![RequestOutcome::Shed; offered.len()];
        let mut tenants: BTreeMap<u32, TenantStats> = BTreeMap::new();
        fn tenant_entry(tenants: &mut BTreeMap<u32, TenantStats>, t: u32) -> &mut TenantStats {
            tenants.entry(t).or_insert_with(|| TenantStats {
                tenant: t,
                offered: 0,
                served: 0,
                shed: 0,
                shed_queue_full: 0,
                shed_over_quota: 0,
                expired: 0,
                latency: CycleHistogram::default(),
            })
        }

        let res_before = self.rt.residency.stats();
        let mut latency = CycleHistogram::default();
        let mut batches: Vec<BatchRecord> = Vec::new();
        let mut served = 0u64;
        let mut shed = 0u64;
        let mut expired = 0u64;
        let mut makespan = 0u64;
        let mut max_depth = 0u64;
        let mut server_free_at = 0u64;
        // Opens when a request enters an empty queue; dispatch happens at
        // `max(server_free_at, window_deadline)`.
        let mut window_deadline = 0u64;
        let mut next = 0usize; // cursor into `order`

        loop {
            let dispatch_at = if queue.is_empty() {
                None
            } else {
                Some(server_free_at.max(window_deadline))
            };
            let arrival_now = match (next < order.len(), dispatch_at) {
                (false, None) => break,
                (true, None) => true,
                (false, Some(_)) => false,
                // A request arriving strictly before the dispatch point
                // still joins the open window; at a tie the window closes
                // first.
                (true, Some(d)) => offered[order[next]].at < d,
            };

            if arrival_now {
                let id = order[next];
                next += 1;
                let r = offered[id];
                let stats = tenant_entry(&mut tenants, r.tenant);
                stats.offered += 1;
                let was_empty = queue.is_empty();
                let deadline = r.at.saturating_add(r.deadline_slack);
                let pending = Pending {
                    id: id as u32,
                    model: r.model,
                    tenant: r.tenant,
                    arrival: r.at,
                    deadline,
                };
                match queue.try_push(r.priority, deadline, r.tenant, pending) {
                    Ok(()) => {
                        if was_empty {
                            window_deadline = r.at + self.cfg.batch_window;
                        }
                        metrics.inc(names::SERVE_ENQUEUED, 1);
                        max_depth = max_depth.max(queue.len() as u64);
                        if let Some(s) = sampler.as_mut() {
                            s.count(
                                telemetry::series::SERVE_ENQUEUED,
                                &label_of(r.tenant),
                                r.at,
                                1,
                            );
                            s.level(
                                telemetry::series::SERVE_QUEUE_DEPTH,
                                "",
                                r.at,
                                queue.len() as u64,
                            );
                        }
                        stracer.instant(
                            r.at,
                            SERVING_LANE,
                            EventKind::RequestEnqueue {
                                tenant: r.tenant,
                                request: id as u32,
                            },
                        );
                        if let Some(f) = flight.as_mut() {
                            f.observe(
                                r.at,
                                EventKind::RequestEnqueue {
                                    tenant: r.tenant,
                                    request: id as u32,
                                },
                            );
                        }
                    }
                    Err(why) => {
                        shed += 1;
                        stats.shed += 1;
                        outcomes[id] = RequestOutcome::Shed;
                        metrics.inc(names::SERVE_SHED, 1);
                        if let Some(s) = sampler.as_mut() {
                            s.count(telemetry::series::SERVE_SHED, &label_of(r.tenant), r.at, 1);
                        }
                        // Record *which* limit fired — backpressure and
                        // quota enforcement are different operator
                        // problems (grow the queue vs re-tier a tenant).
                        let reason = match why {
                            AdmitError::QueueFull => {
                                stats.shed_queue_full += 1;
                                metrics.inc(names::SERVE_SHED_QUEUE_FULL, 1);
                                ShedReason::QueueFull
                            }
                            AdmitError::TenantOverQuota => {
                                stats.shed_over_quota += 1;
                                metrics.inc(names::SERVE_SHED_QUOTA, 1);
                                ShedReason::TenantOverQuota
                            }
                        };
                        stracer.instant(
                            r.at,
                            SERVING_LANE,
                            EventKind::RequestShed {
                                tenant: r.tenant,
                                request: id as u32,
                                reason,
                            },
                        );
                        if let Some(f) = flight.as_mut() {
                            f.observe(
                                r.at,
                                EventKind::RequestShed {
                                    tenant: r.tenant,
                                    request: id as u32,
                                    reason,
                                },
                            );
                            f.trigger(
                                IncidentTrigger::Shed {
                                    request: id as u32,
                                    tenant: r.tenant,
                                    reason,
                                },
                                r.at,
                                &self.rt.residency,
                                queue.len() as u64,
                                queue_capacity,
                                queue.tracked_tenants() as u64,
                                tenant_quota,
                            );
                        }
                    }
                }
                continue;
            }

            // Dispatch: head plus successive same-model followers, in
            // strict queue order, up to max_batch. Deadlines are enforced
            // here, in virtual time: a popped request whose deadline has
            // already passed is dropped as Expired instead of launched —
            // its answer could only arrive uselessly late, and launching
            // it would delay every live request behind it.
            let t = dispatch_at.expect("queue nonempty");
            #[allow(clippy::too_many_arguments)]
            fn expire_one(
                p: Pending,
                t: u64,
                outcomes: &mut [RequestOutcome],
                tenants: &mut BTreeMap<u32, TenantStats>,
                metrics: &Metrics,
                stracer: &mut Tracer<'_>,
                expired: &mut u64,
                sampler: &mut Option<Sampler>,
                label: &str,
            ) {
                *expired += 1;
                outcomes[p.id as usize] = RequestOutcome::Expired {
                    deadline: p.deadline,
                    at: t,
                };
                metrics.inc(names::SERVE_EXPIRED, 1);
                tenant_entry(tenants, p.tenant).expired += 1;
                // An expired request is by definition an SLO miss: it was
                // never answered at all.
                if let Some(s) = sampler.as_mut() {
                    s.count(telemetry::series::SERVE_EXPIRED, label, t, 1);
                    s.count(telemetry::series::SLO_MISSED, label, t, 1);
                }
                stracer.instant(
                    t,
                    SERVING_LANE,
                    EventKind::RequestExpired {
                        tenant: p.tenant,
                        request: p.id,
                        late: t - p.deadline,
                    },
                );
            }
            let mut head = None;
            while let Some(p) = queue.pop() {
                if p.deadline < t {
                    expire_one(
                        p,
                        t,
                        &mut outcomes,
                        &mut tenants,
                        &metrics,
                        &mut stracer,
                        &mut expired,
                        &mut sampler,
                        &label_of(p.tenant),
                    );
                    if let Some(f) = flight.as_mut() {
                        f.observe(
                            t,
                            EventKind::RequestExpired {
                                tenant: p.tenant,
                                request: p.id,
                                late: t - p.deadline,
                            },
                        );
                        f.trigger(
                            IncidentTrigger::Expired {
                                request: p.id,
                                tenant: p.tenant,
                                late: t - p.deadline,
                            },
                            t,
                            &self.rt.residency,
                            queue.len() as u64,
                            queue_capacity,
                            queue.tracked_tenants() as u64,
                            tenant_quota,
                        );
                    }
                } else {
                    head = Some(p);
                    break;
                }
            }
            let Some(head) = head else {
                // Every queued request had expired; the next arrival (if
                // any) reopens the batch window on an empty queue.
                continue;
            };
            let mut batch = vec![head];
            while batch.len() < self.cfg.max_batch.max(1)
                && queue.peek().is_some_and(|p| p.model == head.model)
            {
                let p = queue.pop().expect("peeked");
                if p.deadline < t {
                    // An expired follower is dropped without consuming a
                    // batch slot.
                    expire_one(
                        p,
                        t,
                        &mut outcomes,
                        &mut tenants,
                        &metrics,
                        &mut stracer,
                        &mut expired,
                        &mut sampler,
                        &label_of(p.tenant),
                    );
                    if let Some(f) = flight.as_mut() {
                        f.observe(
                            t,
                            EventKind::RequestExpired {
                                tenant: p.tenant,
                                request: p.id,
                                late: t - p.deadline,
                            },
                        );
                        f.trigger(
                            IncidentTrigger::Expired {
                                request: p.id,
                                tenant: p.tenant,
                                late: t - p.deadline,
                            },
                            t,
                            &self.rt.residency,
                            queue.len() as u64,
                            queue_capacity,
                            queue.tracked_tenants() as u64,
                            tenant_quota,
                        );
                    }
                } else {
                    batch.push(p);
                }
            }
            let batch_idx = batches.len() as u32;
            let size = batch.len() as u32;
            let launch_seed = mix64(self.cfg.seed, batch_idx as u64);
            if let Some(s) = sampler.as_mut() {
                // Post-dispatch depth: how much work the batch left behind.
                s.level(
                    telemetry::series::SERVE_QUEUE_DEPTH,
                    "",
                    t,
                    queue.len() as u64,
                );
            }
            stracer.instant(
                t,
                SERVING_LANE,
                EventKind::BatchBegin {
                    batch: batch_idx,
                    size,
                },
            );
            if let Some(f) = flight.as_mut() {
                f.observe(
                    t,
                    EventKind::BatchBegin {
                        batch: batch_idx,
                        size,
                    },
                );
            }
            let graph = (self.models[head.model as usize])(size);
            let (out, certified) = if self.cfg.certify {
                // Certified launches run base-0 into a private scratch
                // ring so the profiler's plan-vs-actual join sees exactly
                // one launch at its planned coordinates.
                let scratch = Arc::new(RingSink::new(1 << 18));
                self.rt
                    .set_trace_sink(Arc::clone(&scratch) as Arc<dyn tsm_trace::TraceSink>);
                let out = self.rt.launch_at(&graph, launch_seed, 0);
                match &user_sink {
                    Some(s) => self.rt.set_trace_sink(Arc::clone(s)),
                    None => self.rt.clear_trace_sink(),
                }
                let out = out?;
                let planned = self
                    .rt
                    .planned_timeline()
                    .expect("datapath launch has a planned timeline");
                let certified = profile(&planned, &scratch.sorted_events(), scratch.dropped())
                    .map(|p| p.conformance.certified())
                    .unwrap_or(false);
                (out, Some(certified))
            } else {
                (self.rt.launch_at(&graph, launch_seed, t)?, None)
            };
            let completion = t + out.timeline_cycles;
            server_free_at = completion;
            makespan = makespan.max(completion);
            // Merge the launch's link/chip heatmaps onto the serving
            // timeline. Certified launches run base-0 into a scratch sink,
            // so their window coordinates are not on this timeline — their
            // heatmaps stay on the batch's own outcome record instead.
            if !self.cfg.certify {
                if let (Some(s), Some(lt)) = (sampler.as_mut(), out.telemetry.as_ref()) {
                    s.absorb(lt);
                }
            }
            metrics.inc(names::SERVE_BATCHES, 1);
            metrics.observe_cycles(names::SERVE_BATCH_SIZE, size as u64);
            for p in &batch {
                let lat = completion - p.arrival;
                outcomes[p.id as usize] = RequestOutcome::Served {
                    batch: batch_idx,
                    completion,
                    latency: lat,
                };
                served += 1;
                latency.observe(lat);
                metrics.inc(names::SERVE_SERVED, 1);
                metrics.observe_cycles(names::SERVE_LATENCY, lat);
                let stats = tenant_entry(&mut tenants, p.tenant);
                stats.served += 1;
                stats.latency.observe(lat);
                if let Some(s) = sampler.as_mut() {
                    let lbl = label_of(p.tenant);
                    s.count(telemetry::series::SERVE_THROUGHPUT, &lbl, completion, 1);
                    // A served request meets its SLO when its answer
                    // arrives by its deadline (virtual time, so exact).
                    let slo = if completion <= p.deadline {
                        telemetry::series::SLO_MET
                    } else {
                        telemetry::series::SLO_MISSED
                    };
                    s.count(slo, &lbl, completion, 1);
                }
                stracer.instant(
                    completion,
                    SERVING_LANE,
                    EventKind::RequestComplete {
                        tenant: p.tenant,
                        request: p.id,
                        latency: lat,
                    },
                );
                if let Some(f) = flight.as_mut() {
                    f.observe(
                        completion,
                        EventKind::RequestComplete {
                            tenant: p.tenant,
                            request: p.id,
                            latency: lat,
                        },
                    );
                    if completion > p.deadline {
                        f.trigger(
                            IncidentTrigger::SloMiss {
                                request: p.id,
                                tenant: p.tenant,
                                late: completion - p.deadline,
                            },
                            completion,
                            &self.rt.residency,
                            queue.len() as u64,
                            queue_capacity,
                            queue.tracked_tenants() as u64,
                            tenant_quota,
                        );
                    }
                }
                if let Some(bd) = breakdowns.as_mut() {
                    // The causal join: the dispatch point, the window the
                    // batch waited on, and the launch's own timeline
                    // decomposition. `from_dispatch` verifies the sum
                    // identity, so every served request either carries an
                    // exact breakdown or the serve run fails loudly.
                    let b = LatencyBreakdown::from_dispatch(
                        p.id,
                        p.tenant,
                        batch_idx,
                        p.arrival,
                        t,
                        window_deadline,
                        completion,
                        out.alignment_cycles,
                        out.span_cycles,
                        out.attempts(),
                        EPOCH_GAP_CYCLES,
                        out.compiles(),
                        out.reuses(),
                    )
                    .map_err(|e| RuntimeError::Execution(format!("attribution: {e}")))?;
                    bd.push(b);
                }
            }
            stracer.instant(
                completion,
                SERVING_LANE,
                EventKind::BatchEnd {
                    batch: batch_idx,
                    attempts: out.attempts(),
                },
            );
            if let Some(f) = flight.as_mut() {
                f.observe(
                    completion,
                    EventKind::BatchEnd {
                        batch: batch_idx,
                        attempts: out.attempts(),
                    },
                );
                if certified == Some(false) {
                    f.trigger(
                        IncidentTrigger::Deviant { batch: batch_idx },
                        completion,
                        &self.rt.residency,
                        queue.len() as u64,
                        queue_capacity,
                        queue.tracked_tenants() as u64,
                        tenant_quota,
                    );
                }
                if !out.failovers.is_empty() || out.fec_total().uncorrectable > 0 {
                    f.trigger(
                        IncidentTrigger::Fault {
                            batch: batch_idx,
                            replays: u64::from(out.replays()),
                            failovers: out.failovers.len() as u64,
                        },
                        completion,
                        &self.rt.residency,
                        queue.len() as u64,
                        queue_capacity,
                        queue.tracked_tenants() as u64,
                        tenant_quota,
                    );
                }
            }
            batches.push(BatchRecord {
                batch: batch_idx,
                model: head.model,
                size,
                dispatch: t,
                completion,
                seed: launch_seed,
                attempts: out.attempts(),
                certified,
                outcome: out,
            });
        }

        metrics.set_gauge(names::SERVE_QUEUE_DEPTH, max_depth);
        // The run's residency behavior, as a delta over the manager's
        // lifetime counters — per-launch metrics stay untouched, so
        // single-model launch records remain bit-identical to the
        // pre-residency runtime.
        self.rt.residency.record_delta(&res_before, &metrics);
        let telemetry = sampler.map(Sampler::finish);
        let incidents = flight.map(|f| f.finish(telemetry.as_ref()));
        let attribution = match breakdowns {
            Some(b) => Some(
                // Re-verifies every breakdown while aggregating — the
                // per-request sums-to-total assertion of the serve run.
                AttributionReport::from_breakdowns(b)
                    .map_err(|e| RuntimeError::Execution(format!("attribution: {e}")))?,
            ),
            None => None,
        };
        Ok(ServeReport {
            offered: offered.len() as u64,
            served,
            shed,
            expired,
            batches,
            outcomes,
            latency,
            tenants: tenants.into_values().collect(),
            makespan,
            metrics: metrics.snapshot(),
            telemetry,
            attribution,
            incidents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SparePolicy;
    use crate::system::System;
    use tsm_compiler::graph::OpKind;
    use tsm_topology::TspId;

    #[test]
    fn queue_orders_by_priority_then_deadline_then_seq() {
        let mut q: WorkQueue<u32> = WorkQueue::new(16);
        q.try_push(1, 50, 0, 0).unwrap();
        q.try_push(0, 90, 0, 1).unwrap();
        q.try_push(0, 90, 0, 2).unwrap(); // FIFO tie with the previous
        q.try_push(0, 10, 0, 3).unwrap();
        q.try_push(2, 0, 0, 4).unwrap();
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![3, 1, 2, 0, 4]);
    }

    #[test]
    fn queue_capacity_and_tenant_quota_refuse() {
        let mut q: WorkQueue<()> = WorkQueue::new(2).with_tenant_quota(1);
        q.try_push(0, 0, 7, ()).unwrap();
        assert_eq!(q.try_push(0, 0, 7, ()), Err(AdmitError::TenantOverQuota));
        q.try_push(0, 0, 8, ()).unwrap();
        assert_eq!(q.try_push(0, 0, 9, ()), Err(AdmitError::QueueFull));
        // popping frees both the slot and the quota
        q.pop().unwrap();
        q.try_push(0, 0, 7, ()).unwrap();
    }

    fn tiny_model(batch: u32) -> Graph {
        let mut g = Graph::new();
        // Span scales with batch so batching visibly changes service time.
        g.add(
            TspId(0),
            OpKind::Compute {
                cycles: 1_000 * batch as u64,
            },
            vec![],
        )
        .unwrap();
        g
    }

    fn server(cfg: ServeConfig) -> Server {
        let rt = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem);
        let mut s = Server::new(rt, cfg);
        let id = s.add_model(tiny_model);
        assert_eq!(id, 0);
        s
    }

    fn req(at: u64, tenant: u32) -> Request {
        Request {
            at,
            tenant,
            model: 0,
            priority: 1,
            deadline_slack: 1_000_000,
        }
    }

    #[test]
    fn serve_batches_within_window_and_accounts_tenants() {
        let mut s = server(ServeConfig {
            batch_window: 500,
            max_batch: 8,
            ..ServeConfig::default()
        });
        // Three requests inside one window, one straggler far later.
        let offered = [req(0, 0), req(10, 1), req(20, 0), req(900_000, 1)];
        let report = s.serve(&offered).unwrap();
        assert_eq!(report.served, 4);
        assert_eq!(report.shed, 0);
        assert_eq!(report.batches.len(), 2);
        assert_eq!(report.batches[0].size, 3);
        assert_eq!(report.batches[0].dispatch, 500);
        assert_eq!(report.batches[1].size, 1);
        let t0 = &report.tenants[0];
        let t1 = &report.tenants[1];
        assert_eq!((t0.tenant, t0.offered, t0.served), (0, 2, 2));
        assert_eq!((t1.tenant, t1.offered, t1.served), (1, 2, 2));
        assert_eq!(report.latency.count, 4);
        assert_eq!(report.metrics.counter(names::SERVE_BATCHES), 2);
    }

    #[test]
    fn overload_sheds_and_reports_backpressure() {
        let mut s = server(ServeConfig {
            queue_capacity: 2,
            batch_window: 1_000_000, // hold everything in the queue
            ..ServeConfig::default()
        });
        let offered: Vec<Request> = (0..5).map(|i| req(i, 0)).collect();
        let report = s.serve(&offered).unwrap();
        assert_eq!(report.shed, 3);
        assert_eq!(report.served, 2);
        assert_eq!(report.metrics.counter(names::SERVE_SHED), 3);
        assert_eq!(
            report
                .outcomes
                .iter()
                .filter(|o| **o == RequestOutcome::Shed)
                .count(),
            3
        );
    }

    #[test]
    fn tenant_quota_protects_the_other_tenant() {
        let mut s = server(ServeConfig {
            queue_capacity: 64,
            tenant_quota: 2,
            batch_window: 1_000_000,
            ..ServeConfig::default()
        });
        // Tenant 0 bursts 6 requests at cycle 0; tenant 1 arrives later.
        let mut offered: Vec<Request> = (0..6).map(|_| req(0, 0)).collect();
        offered.push(req(5, 1));
        let report = s.serve(&offered).unwrap();
        let t0 = report.tenants.iter().find(|t| t.tenant == 0).unwrap();
        let t1 = report.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert_eq!(t0.shed, 4, "burst capped at the quota");
        assert_eq!(t1.shed, 0, "quota kept room for the quiet tenant");
    }

    #[test]
    fn pop_removes_exhausted_tenants_so_the_map_stays_bounded() {
        let mut q: WorkQueue<u32> = WorkQueue::new(4);
        // Churn many distinct tenant ids through a small queue: the
        // per-tenant map must track only tenants currently queued, not
        // every id ever seen.
        for tenant in 0..1_000u32 {
            q.try_push(0, tenant as u64, tenant, tenant).unwrap();
            if q.len() == 4 {
                q.pop().unwrap();
                q.pop().unwrap();
            }
            assert!(
                q.tracked_tenants() <= q.len(),
                "tenant map leaked: {} tracked, {} queued",
                q.tracked_tenants(),
                q.len()
            );
        }
        while q.pop().is_some() {}
        assert_eq!(q.tracked_tenants(), 0, "drained queue tracks no tenants");
    }

    #[test]
    fn shed_reasons_split_backpressure_from_quota() {
        let mut s = server(ServeConfig {
            queue_capacity: 3,
            tenant_quota: 2,
            batch_window: 1_000_000, // hold everything in the queue
            ..ServeConfig::default()
        });
        // Tenant 0 bursts four requests: 2 admitted, 2 over quota. Then
        // tenants 1 and 2 fill the last slot and hit backpressure.
        let offered = [
            req(0, 0),
            req(1, 0),
            req(2, 0),
            req(3, 0),
            req(4, 1),
            req(5, 2),
        ];
        let report = s.serve(&offered).unwrap();
        assert_eq!(report.shed, 3);
        let t0 = report.tenants.iter().find(|t| t.tenant == 0).unwrap();
        let t2 = report.tenants.iter().find(|t| t.tenant == 2).unwrap();
        assert_eq!((t0.shed_queue_full, t0.shed_over_quota), (0, 2));
        assert_eq!((t2.shed_queue_full, t2.shed_over_quota), (1, 0));
        for t in &report.tenants {
            assert_eq!(t.shed, t.shed_queue_full + t.shed_over_quota);
        }
        assert_eq!(report.metrics.counter(names::SERVE_SHED_QUOTA), 2);
        assert_eq!(report.metrics.counter(names::SERVE_SHED_QUEUE_FULL), 1);
        assert_eq!(report.metrics.counter(names::SERVE_SHED), 3);
    }

    #[test]
    fn stale_head_expires_at_dispatch_instead_of_launching() {
        let mut s = server(ServeConfig {
            batch_window: 5_000, // the head goes stale while the window is open
            ..ServeConfig::default()
        });
        let offered = [
            Request {
                deadline_slack: 100,
                ..req(0, 0)
            },
            req(10, 1), // ample slack: served
        ];
        let report = s.serve(&offered).unwrap();
        assert_eq!(report.expired, 1);
        assert_eq!(report.served, 1);
        assert_eq!(report.shed, 0);
        assert_eq!(
            report.outcomes[0],
            RequestOutcome::Expired {
                deadline: 100,
                at: 5_000
            }
        );
        assert!(matches!(report.outcomes[1], RequestOutcome::Served { .. }));
        let t0 = report.tenants.iter().find(|t| t.tenant == 0).unwrap();
        assert_eq!((t0.expired, t0.served, t0.shed), (1, 0, 0));
        assert_eq!(report.metrics.counter(names::SERVE_EXPIRED), 1);
        // Only the live request launched.
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.batches[0].size, 1);
    }

    #[test]
    fn all_expired_queue_drains_without_launching() {
        let mut s = server(ServeConfig {
            batch_window: 10_000,
            ..ServeConfig::default()
        });
        let offered = [
            Request {
                deadline_slack: 1,
                ..req(0, 0)
            },
            Request {
                deadline_slack: 2,
                ..req(5, 0)
            },
        ];
        let report = s.serve(&offered).unwrap();
        assert_eq!((report.expired, report.served), (2, 0));
        assert!(report.batches.is_empty(), "nothing launched");
        assert_eq!(report.makespan, 0);
    }

    #[test]
    fn multi_model_round_robin_hits_the_residency_layer() {
        let mut s = server(ServeConfig::default());
        let other = s.add_model(|b| {
            let mut g = Graph::new();
            g.add(
                TspId(8),
                OpKind::Compute {
                    cycles: 700 * b as u64,
                },
                vec![],
            )
            .unwrap();
            g
        });
        // A,B,A,B,A,B with spaced arrivals: 2 compiles, then 4 hits — the
        // alternation that thrashed the old single-entry cache.
        let offered: Vec<Request> = (0..6)
            .map(|i| Request {
                model: if i % 2 == 0 { 0 } else { other },
                ..req(i * 100_000, 0)
            })
            .collect();
        let report = s.serve(&offered).unwrap();
        assert_eq!(report.served, 6);
        assert_eq!(report.metrics.counter(names::RES_MISSES), 2);
        assert_eq!(report.metrics.counter(names::RES_HITS), 4);
        assert_eq!(report.metrics.counter(names::RES_EVICTIONS), 0);
        assert_eq!(report.metrics.gauge(names::RES_RESIDENT_PLANS), Some(2));
    }

    #[test]
    fn serve_is_bit_reproducible() {
        let offered: Vec<Request> = (0..7).map(|i| req(i * 100, i as u32 % 2)).collect();
        let cfg = ServeConfig {
            batch_window: 250,
            seed: 42,
            ..ServeConfig::default()
        };
        let a = server(cfg).serve(&offered).unwrap();
        let b = server(cfg).serve(&offered).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn certify_requires_datapath() {
        let mut s = server(ServeConfig {
            certify: true,
            ..ServeConfig::default()
        });
        let err = s.serve(&[req(0, 0)]).unwrap_err();
        assert!(matches!(err, RuntimeError::Execution(ref m) if m.contains("certify")));
    }

    #[test]
    fn different_models_never_share_a_batch() {
        let mut s = server(ServeConfig {
            batch_window: 1_000,
            ..ServeConfig::default()
        });
        let other = s.add_model(|b| {
            let mut g = Graph::new();
            g.add(
                TspId(8),
                OpKind::Compute {
                    cycles: 500 * b as u64,
                },
                vec![],
            )
            .unwrap();
            g
        });
        let offered = [
            req(0, 0),
            Request {
                model: other,
                ..req(1, 0)
            },
            req(2, 0),
        ];
        let report = s.serve(&offered).unwrap();
        // Queue order is FIFO here (same priority/deadline-slack shape up
        // to arrival): model 0, model 1, model 0 — no cross-model folding,
        // and no reordering past the model-1 entry.
        assert_eq!(report.batches.len(), 3);
        assert!(report.batches.iter().all(|b| b.size == 1));
    }
}
