//! The software-defined tensor streaming multiprocessor, assembled.
//!
//! [`System`] is the public entry point a downstream user programs
//! against: build a system at some scale, hand the compiler a computation
//! graph, and execute the resulting cycle-exact schedule under the
//! runtime model (HAC alignment, PCIe invocation jitter, FEC, software
//! replay).
//!
//! ```
//! use tsm_core::System;
//! use tsm_compiler::graph::{Graph, OpKind};
//! use tsm_compiler::schedule::CompileOptions;
//! use tsm_topology::TspId;
//!
//! let system = System::single_node();
//! let mut graph = Graph::new();
//! graph.add(TspId(0), OpKind::Compute { cycles: 9000 }, vec![]).unwrap();
//! let program = system.compile(&graph, CompileOptions::default()).unwrap();
//! let report = system.execute(&program, 42);
//! assert!(report.succeeded);
//! assert_eq!(report.estimated_cycles, 9000);
//! ```

pub mod cosim;
pub mod flight;
pub mod launch;
pub mod report;
pub mod residency;
pub mod runtime;
pub mod serving;
pub mod system;

pub use cosim::{
    compile_plan, run_transfers, run_transfers_serial, CompiledPlan, CosimError, CosimReport,
    CosimTransfer, LinkFaultModel, PlanExecutor, TargetedFlip, TransferShape,
};
pub use flight::{FlightConfig, FlightRecorder, IncidentReport, IncidentTrigger};
pub use launch::{
    Admission, AlignmentWindow, AttemptSuccess, CompileDecision, ExecuteFailure, LaunchEngine,
    Recovery,
};
pub use report::ExecutionReport;
pub use residency::{ResidencyManager, ResidencyStats, ResidentInfo};
pub use runtime::{graph_fingerprint, ExecMode, LaunchOutcome, Runtime, RuntimeError, SparePolicy};
pub use serving::{
    AdmitError, BatchRecord, Request, RequestOutcome, ServeConfig, ServeReport, Server,
    TenantStats, WorkQueue,
};
pub use system::{System, SystemConfig, SystemError};
