//! Multi-chip co-simulation: lowering a network schedule to per-TSP chip
//! programs and executing them with real vector payloads.
//!
//! This is the runtime/assembler layer of the paper's software stack
//! (Fig 12): "the scheduled program is passed to the assembler to generate
//! a machine-code binary that is then run on the TSP". Here a scheduled
//! tensor movement becomes, on each participating TSP, a static sequence
//! of `Read`/`Send`/`Receive`/`Write` instructions at exact cycles; the
//! chip executors then *verify* the schedule (no unit conflicts, every
//! RECEIVE preceded by its delivery) while the payload bytes flow through
//! end to end.
//!
//! Because every timing is static, the co-simulation needs no global event
//! loop: deliveries at hop `h` depend only on emissions at hop `h−1`, so
//! the driver resolves chips in hop rounds and the result is exact.

use std::collections::HashMap;
use tsm_chip::exec::{ChipProgram, ChipSim, ExecError};
use tsm_isa::instr::Instruction;
use tsm_isa::{Direction, StreamId, Vector};
use tsm_net::ssn::{scheduled_link_latency, vector_slot_cycles, LinkOccupancy, SsnError};
use tsm_topology::route::shortest_path;
use tsm_topology::{Topology, TopologyError, TspId};

/// One tensor movement to co-simulate: `data` travels from `from`'s SRAM
/// (slice/offset base) into `to`'s SRAM.
#[derive(Debug, Clone)]
pub struct CosimTransfer {
    /// Source TSP.
    pub from: TspId,
    /// Destination TSP.
    pub to: TspId,
    /// Source SRAM slice.
    pub src_slice: u8,
    /// Source SRAM base offset (vectors laid out contiguously).
    pub src_offset: u16,
    /// Destination SRAM slice.
    pub dst_slice: u8,
    /// Destination SRAM base offset.
    pub dst_offset: u16,
    /// The payload vectors.
    pub data: Vec<Vector>,
}

/// Errors from co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CosimError {
    /// No route between the endpoints.
    Route(TopologyError),
    /// The network schedule failed.
    Schedule(SsnError),
    /// A chip rejected its lowered program — a lowering bug by definition.
    Chip {
        /// The offending TSP.
        tsp: TspId,
        /// The executor's verdict.
        error: ExecError,
    },
    /// A destination's SRAM did not end up with the expected payload.
    DataMismatch {
        /// The offending transfer (index into the input slice).
        transfer: usize,
        /// Vector index within the transfer.
        vector: usize,
    },
}

impl std::fmt::Display for CosimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CosimError::Route(e) => write!(f, "route: {e}"),
            CosimError::Schedule(e) => write!(f, "schedule: {e}"),
            CosimError::Chip { tsp, error } => write!(f, "{tsp} rejected program: {error}"),
            CosimError::DataMismatch { transfer, vector } => {
                write!(f, "transfer {transfer}, vector {vector}: payload mismatch")
            }
        }
    }
}

impl std::error::Error for CosimError {}

/// Result of a co-simulated run.
#[derive(Debug, Clone)]
pub struct CosimReport {
    /// Cycle at which the last instruction retired, per TSP.
    pub retire_cycles: HashMap<TspId, u64>,
    /// Total instructions lowered across all chips.
    pub instructions: usize,
    /// Per-transfer scheduled arrival cycle of the last vector.
    pub arrivals: Vec<u64>,
}

/// MEM read pipeline latency (must match `Instruction::Read::min_latency`).
const READ_LATENCY: u64 = 5;

/// Chip SRAM slice reserved for forwarding scratch buffers.
const SCRATCH_SLICE: u8 = 80;

/// Allocates `vectors` scratch offsets on `tsp`.
fn scratch_base(next: &mut HashMap<TspId, u16>, tsp: TspId, vectors: u16) -> u16 {
    let e = next.entry(tsp).or_insert(0);
    let base = *e;
    *e += vectors;
    base
}

/// Lowers the transfers onto minimal paths, generates per-TSP chip
/// programs, pre-computes every delivery, executes all chips, and checks
/// destination SRAM bit-for-bit.
pub fn run_transfers(
    topo: &Topology,
    transfers: &[CosimTransfer],
) -> Result<CosimReport, CosimError> {
    let slot = vector_slot_cycles();
    let mut occupancy = LinkOccupancy::new();
    let mut programs: HashMap<TspId, ChipProgram> = HashMap::new();
    let mut sims: HashMap<TspId, ChipSim> = HashMap::new();
    let mut arrivals = Vec::with_capacity(transfers.len());

    // Streams are assigned round-robin per TSP so concurrent transfers
    // through one chip use distinct stream registers.
    let mut next_stream: HashMap<TspId, u8> = HashMap::new();
    // Forwarding scratch space, bump-allocated per chip.
    let mut scratch_next: HashMap<TspId, u16> = HashMap::new();
    let stream_for = |tsp: TspId, m: &mut HashMap<TspId, u8>| -> StreamId {
        let s = m.entry(tsp).or_insert(0);
        let id = StreamId::new(*s).expect("stream budget");
        *s = (*s + 1) % 32;
        id
    };

    for (_idx, tr) in transfers.iter().enumerate() {
        let path = shortest_path(topo, tr.from, tr.to).map_err(CosimError::Route)?;
        assert!(!path.links.is_empty(), "cosim transfers must cross the network");
        // Injection starts after the source's SRAM read pipeline has had
        // time to stage the first vector.
        let sched = occupancy
            .schedule_transfer(topo, &path, tr.data.len() as u64, READ_LATENCY)
            .map_err(CosimError::Schedule)?;
        arrivals.push(sched.last_arrival);

        // Recover each hop's block start from the reservations just added.
        let hop_starts: Vec<u64> = occupancy
            .reservations()
            .iter()
            .filter(|r| r.transfer == sched.transfer)
            .map(|r| r.start)
            .collect();
        debug_assert_eq!(hop_starts.len(), path.links.len());

        // Preload the source SRAM with the payload.
        let src_sim = sims.entry(tr.from).or_default();
        for (v, vec) in tr.data.iter().enumerate() {
            src_sim.preload(tr.src_slice, tr.src_offset + v as u16, vec.clone());
        }

        // Source program: Read -> Send per vector.
        let src_stream = stream_for(tr.from, &mut next_stream);
        let src_port = port_of(topo, &path, 0, tr.from);
        let prog = programs.entry(tr.from).or_default();
        for v in 0..tr.data.len() as u64 {
            let send_at = hop_starts[0] + v * slot;
            prog.push(
                send_at - READ_LATENCY,
                Instruction::Read {
                    slice: tr.src_slice,
                    offset: tr.src_offset + v as u16,
                    stream: src_stream,
                    dir: Direction::East,
                },
            );
            prog.push(send_at, Instruction::Send { port: src_port, stream: src_stream });
        }

        // Intermediate hops: Receive -> Write -> Read -> Send. The vector
        // must be staged in local SRAM between arrival and forwarding
        // ("we use the local SRAM storage on each TSP to provide
        // intermediate buffering", §2.3) — a stream register alone would
        // be overwritten by the next arriving flit long before the
        // 398-cycle forwarding point. This staging is exactly what the
        // per-hop overhead pays for.
        for h in 1..path.links.len() {
            let tsp = path.tsps[h];
            let in_port = port_of(topo, &path, h - 1, tsp);
            let out_port = port_of(topo, &path, h, tsp);
            let in_stream = stream_for(tsp, &mut next_stream);
            let out_stream = stream_for(tsp, &mut next_stream);
            let scratch = scratch_base(&mut scratch_next, tsp, tr.data.len() as u16);
            let in_latency = scheduled_link_latency(topo, path.links[h - 1]);
            let prog = programs.entry(tsp).or_default();
            for v in 0..tr.data.len() as u64 {
                let arrive = hop_starts[h - 1] + (v + 1) * slot + in_latency;
                let forward = hop_starts[h] + v * slot;
                debug_assert!(forward >= arrive + 1 + READ_LATENCY + 1);
                prog.push(arrive, Instruction::Receive { port: in_port, stream: in_stream });
                prog.push(
                    arrive + 1,
                    Instruction::Write {
                        slice: SCRATCH_SLICE,
                        offset: scratch + v as u16,
                        stream: in_stream,
                    },
                );
                prog.push(
                    forward - READ_LATENCY,
                    Instruction::Read {
                        slice: SCRATCH_SLICE,
                        offset: scratch + v as u16,
                        stream: out_stream,
                        dir: Direction::East,
                    },
                );
                prog.push(forward, Instruction::Send { port: out_port, stream: out_stream });
            }
        }

        // Destination: Receive -> Write.
        let last = path.links.len() - 1;
        let dst_port = port_of(topo, &path, last, tr.to);
        let dst_stream = stream_for(tr.to, &mut next_stream);
        let out_latency = scheduled_link_latency(topo, path.links[last]);
        let prog = programs.entry(tr.to).or_default();
        for v in 0..tr.data.len() as u64 {
            let arrive = hop_starts[last] + (v + 1) * slot + out_latency;
            prog.push(arrive, Instruction::Receive { port: dst_port, stream: dst_stream });
            prog.push(
                arrive + 1,
                Instruction::Write {
                    slice: tr.dst_slice,
                    offset: tr.dst_offset + v as u16,
                    stream: dst_stream,
                },
            );
        }
    }

    // Resolve deliveries in hop rounds: run every chip, harvest emissions,
    // convert them into the next round's deliveries. Timing is static, so
    // `max hops + 1` rounds reach the fixpoint.
    let max_hops = transfers
        .iter()
        .map(|t| shortest_path(topo, t.from, t.to).map(|p| p.hops()).unwrap_or(0))
        .max()
        .unwrap_or(0);
    let instructions: usize = programs.values().map(|p| p.len()).sum();
    let mut deliveries: HashMap<TspId, Vec<(u8, u64, Vector)>> = HashMap::new();
    let mut retire_cycles = HashMap::new();

    for round in 0..=max_hops {
        let mut emissions: HashMap<TspId, Vec<(u8, u64, Vector)>> = HashMap::new();
        for (&tsp, prog) in &programs {
            let mut sim = sims.get(&tsp).cloned().unwrap_or_default();
            for (port, cycle, vec) in deliveries.get(&tsp).into_iter().flatten() {
                sim.deliver(*port, *cycle, vec.clone());
            }
            match sim.run(prog) {
                Ok(retire) => {
                    retire_cycles.insert(tsp, retire);
                }
                Err(error) => {
                    // Early rounds may legitimately miss upstream
                    // deliveries; only the final round must be clean.
                    if round == max_hops {
                        return Err(CosimError::Chip { tsp, error });
                    }
                    continue;
                }
            }
            for e in sim.emissions() {
                let (peer, peer_port) = peer_of(topo, tsp, e.port);
                let link = link_between(topo, tsp, e.port);
                let arrive = e.cycle + slot + scheduled_link_latency(topo, link);
                emissions.entry(peer).or_default().push((peer_port, arrive, e.vector.clone()));
            }
            if round == max_hops {
                sims.insert(tsp, sim); // keep final state for verification
            }
        }
        deliveries = emissions;
    }

    // Verify destination SRAM contents bit-for-bit.
    for (idx, tr) in transfers.iter().enumerate() {
        let sim = sims.get(&tr.to).expect("destination simulated");
        for (v, expected) in tr.data.iter().enumerate() {
            match sim.sram(tr.dst_slice, tr.dst_offset + v as u16) {
                Some(got) if got == expected => {}
                _ => return Err(CosimError::DataMismatch { transfer: idx, vector: v }),
            }
        }
    }

    Ok(CosimReport { retire_cycles, instructions, arrivals })
}

/// The port number `tsp` uses on hop `h`'s link.
fn port_of(topo: &Topology, path: &tsm_topology::route::Path, h: usize, tsp: TspId) -> u8 {
    let l = topo.link(path.links[h]);
    if l.a == tsp {
        l.a_port
    } else {
        debug_assert_eq!(l.b, tsp);
        l.b_port
    }
}

/// The (peer, peer port) at the other end of `tsp`'s `port`.
fn peer_of(topo: &Topology, tsp: TspId, port: u8) -> (TspId, u8) {
    for l in topo.links() {
        if l.a == tsp && l.a_port == port {
            return (l.b, l.b_port);
        }
        if l.b == tsp && l.b_port == port {
            return (l.a, l.a_port);
        }
    }
    panic!("{tsp} has no cable on port {port}");
}

/// The link on `tsp`'s `port`.
fn link_between(topo: &Topology, tsp: TspId, port: u8) -> tsm_topology::LinkId {
    for (i, l) in topo.links().iter().enumerate() {
        if (l.a == tsp && l.a_port == port) || (l.b == tsp && l.b_port == port) {
            return tsm_topology::LinkId(i as u32);
        }
    }
    panic!("{tsp} has no cable on port {port}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize, seed: u8) -> Vec<Vector> {
        (0..n).map(|i| Vector::from_fn(|b| (b as u8) ^ seed.wrapping_add(i as u8))).collect()
    }

    #[test]
    fn single_hop_transfer_delivers_bit_exact() {
        let topo = Topology::single_node();
        let tr = CosimTransfer {
            from: TspId(0),
            to: TspId(1),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 4,
            dst_offset: 100,
            data: payload(20, 7),
        };
        let report = run_transfers(&topo, &[tr]).unwrap();
        assert_eq!(report.arrivals.len(), 1);
        assert!(report.instructions >= 20 * 4);
        assert!(report.retire_cycles[&TspId(1)] >= report.arrivals[0]);
    }

    #[test]
    fn two_hop_transfer_forwards_through_intermediate() {
        // Cross-node transfer between TSPs without a direct cable: the
        // intermediate TSP's program receives and re-sends every flit.
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let from = TspId(0);
        // pick a destination with no direct link to TSP 0
        let to = topo
            .tsps()
            .find(|&t| t.node() != from.node() && topo.links_between(from, t).is_empty())
            .expect("some non-adjacent cross-node TSP");
        let tr = CosimTransfer {
            from,
            to,
            src_slice: 1,
            src_offset: 0,
            dst_slice: 2,
            dst_offset: 0,
            data: payload(8, 31),
        };
        let report = run_transfers(&topo, &[tr]).unwrap();
        // three chips participated: source, forwarder, destination
        assert!(report.retire_cycles.len() >= 3, "{:?}", report.retire_cycles);
    }

    #[test]
    fn concurrent_transfers_share_the_fabric() {
        let topo = Topology::single_node();
        let transfers: Vec<CosimTransfer> = (0..4u32)
            .map(|i| CosimTransfer {
                from: TspId(i),
                to: TspId(i + 4),
                src_slice: 0,
                src_offset: 0,
                dst_slice: 1,
                dst_offset: 0,
                data: payload(10, i as u8),
            })
            .collect();
        let report = run_transfers(&topo, &transfers).unwrap();
        assert_eq!(report.arrivals.len(), 4);
    }

    #[test]
    fn cosim_is_deterministic() {
        let topo = Topology::single_node();
        let run = || {
            let tr = CosimTransfer {
                from: TspId(2),
                to: TspId(6),
                src_slice: 0,
                src_offset: 0,
                dst_slice: 0,
                dst_offset: 0,
                data: payload(32, 5),
            };
            let r = run_transfers(&topo, &[tr]).unwrap();
            (r.arrivals, r.instructions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn arrival_matches_network_schedule_formula() {
        let topo = Topology::single_node();
        let n = 16u64;
        let tr = CosimTransfer {
            from: TspId(0),
            to: TspId(7),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 0,
            dst_offset: 0,
            data: payload(n as usize, 1),
        };
        let report = run_transfers(&topo, &[tr]).unwrap();
        // schedule starts after the 5-cycle SRAM read pipeline
        assert_eq!(report.arrivals[0], 5 + n * vector_slot_cycles() + 228);
    }
}
