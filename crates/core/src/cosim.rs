//! Multi-chip co-simulation: lowering a network schedule to per-TSP chip
//! programs and executing them with real vector payloads.
//!
//! This is the runtime/assembler layer of the paper's software stack
//! (Fig 12): "the scheduled program is passed to the assembler to generate
//! a machine-code binary that is then run on the TSP". Here a scheduled
//! tensor movement becomes, on each participating TSP, a static sequence
//! of `Read`/`Send`/`Receive`/`Write` instructions at exact cycles; the
//! chip executors then *verify* the schedule (no unit conflicts, every
//! RECEIVE preceded by its delivery) while the payload bytes flow through
//! end to end.
//!
//! # Single-pass execution
//!
//! Because the network is statically scheduled, every delivery — the cycle
//! a vector lands on a port, and which vector it is — is known before any
//! chip runs. The driver therefore materializes all deliveries directly
//! from the schedule and executes **each chip exactly once**, in ascending
//! hop-depth order (sources first, then first-hop forwarders, …). There is
//! no fixpoint, no event loop and no re-execution: a cluster-wide run
//! costs one pass over the lowered instructions.
//!
//! The schedule's *claim* that an intermediate chip forwards the right
//! bytes at the right cycle is still verified, not assumed: after a chip
//! executes, its actual C2C emissions are compared bit-for-bit against the
//! emissions the schedule promised. A chip that emits the wrong payload,
//! at the wrong cycle, or on the wrong port fails the run with
//! [`CosimError::EmissionMismatch`] before any downstream chip's inputs
//! are trusted; destination SRAM is additionally checked bit-for-bit at
//! the end.
//!
//! # Determinism contract
//!
//! Chips at the same hop depth are independent (their inputs come only
//! from shallower depths), so each depth level executes in parallel on
//! scoped threads. Parallel and serial runs are **bit-identical**: every
//! chip's execution is a pure function of its program and materialized
//! deliveries, and per-level results are merged in ascending [`TspId`]
//! order regardless of thread completion order — the first error in
//! (depth, TspId) order is the one reported, in both modes.

use std::collections::HashMap;
use std::sync::Arc;
use tsm_chip::exec::{ChipProgram, ChipSim, ExecError, Payload};
use tsm_isa::instr::Instruction;
use tsm_isa::vector::MAX_STREAMS;
use tsm_isa::{Direction, StreamId, Vector};
use tsm_net::ssn::{scheduled_link_latency, vector_slot_cycles, LinkOccupancy, SsnError};
use tsm_topology::route::{shortest_path, Path};
use tsm_topology::{Topology, TopologyError, TspId};

/// One tensor movement to co-simulate: `data` travels from `from`'s SRAM
/// (slice/offset base) into `to`'s SRAM.
#[derive(Debug, Clone)]
pub struct CosimTransfer {
    /// Source TSP.
    pub from: TspId,
    /// Destination TSP.
    pub to: TspId,
    /// Source SRAM slice.
    pub src_slice: u8,
    /// Source SRAM base offset (vectors laid out contiguously).
    pub src_offset: u16,
    /// Destination SRAM slice.
    pub dst_slice: u8,
    /// Destination SRAM base offset.
    pub dst_offset: u16,
    /// The payload vectors.
    pub data: Vec<Vector>,
}

/// Errors from co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CosimError {
    /// No route between the endpoints.
    Route(TopologyError),
    /// The network schedule failed.
    Schedule(SsnError),
    /// A chip rejected its lowered program — a lowering bug by definition.
    Chip {
        /// The offending TSP.
        tsp: TspId,
        /// The executor's verdict.
        error: ExecError,
    },
    /// A chip would need more simultaneously-live stream registers than
    /// the hardware has. The old round-robin allocator silently wrapped
    /// and corrupted data here; exhaustion is now a hard error.
    StreamExhausted {
        /// The overloaded TSP.
        tsp: TspId,
        /// First cycle of the flow that could not be assigned a register.
        cycle: u64,
    },
    /// A chip's actual C2C emissions deviated from what the schedule
    /// promised (wrong cycle, port, payload, or count).
    EmissionMismatch {
        /// The offending TSP.
        tsp: TspId,
        /// Cycle of the first divergent emission.
        cycle: u64,
        /// Port of the first divergent emission.
        port: u8,
    },
    /// A destination's SRAM did not end up with the expected payload.
    DataMismatch {
        /// The offending transfer (index into the input slice).
        transfer: usize,
        /// Vector index within the transfer.
        vector: usize,
    },
}

impl std::fmt::Display for CosimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CosimError::Route(e) => write!(f, "route: {e}"),
            CosimError::Schedule(e) => write!(f, "schedule: {e}"),
            CosimError::Chip { tsp, error } => write!(f, "{tsp} rejected program: {error}"),
            CosimError::StreamExhausted { tsp, cycle } => {
                write!(f, "{tsp} needs a {}rd live stream register at cycle {cycle}", MAX_STREAMS + 1)
            }
            CosimError::EmissionMismatch { tsp, cycle, port } => {
                write!(f, "{tsp} emissions deviate from schedule at cycle {cycle}, port {port}")
            }
            CosimError::DataMismatch { transfer, vector } => {
                write!(f, "transfer {transfer}, vector {vector}: payload mismatch")
            }
        }
    }
}

impl std::error::Error for CosimError {}

/// Result of a co-simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimReport {
    /// Cycle at which the last instruction retired, per TSP.
    pub retire_cycles: HashMap<TspId, u64>,
    /// Total instructions lowered across all chips.
    pub instructions: usize,
    /// Per-transfer scheduled arrival cycle of the last vector.
    pub arrivals: Vec<u64>,
    /// Per-transfer digest of the destination SRAM region after the run —
    /// a compact fingerprint of the delivered bytes, used by the
    /// serial-vs-parallel determinism tests.
    pub dst_digests: Vec<u64>,
}

/// MEM read pipeline latency (must match `Instruction::Read::min_latency`).
const READ_LATENCY: u64 = 5;

/// Chip SRAM slice reserved for forwarding scratch buffers.
const SCRATCH_SLICE: u8 = 80;

/// Allocates `vectors` scratch offsets on `tsp`.
fn scratch_base(next: &mut HashMap<TspId, u16>, tsp: TspId, vectors: u16) -> u16 {
    let e = next.entry(tsp).or_insert(0);
    let base = *e;
    *e += vectors;
    base
}

/// Per-chip stream-register allocator with liveness tracking.
///
/// A flow reserves the lowest-numbered register that is dead over its
/// whole `[start, end]` live range; the register is recycled once the
/// range has passed. Exhaustion (more than [`MAX_STREAMS`] simultaneously
/// live flows through one chip) is reported to the caller instead of
/// silently aliasing a live register, which is what the old modulo-32
/// round-robin did.
#[derive(Debug, Clone)]
struct StreamAlloc {
    /// `live_until[s]` = last cycle on which stream `s` still carries a
    /// live value, or `None` if it was never used.
    live_until: [Option<u64>; MAX_STREAMS],
}

impl StreamAlloc {
    fn new() -> Self {
        StreamAlloc { live_until: [None; MAX_STREAMS] }
    }

    /// Reserves the lowest-numbered stream free over `[start, end]`. A
    /// stream is free only if its previous live range ended *strictly*
    /// before `start` (a same-cycle read/write handoff would be
    /// order-dependent, so it is not allowed).
    fn alloc(&mut self, start: u64, end: u64) -> Option<StreamId> {
        debug_assert!(start <= end);
        for (s, slot) in self.live_until.iter_mut().enumerate() {
            match *slot {
                Some(until) if until >= start => continue,
                _ => {
                    *slot = Some(end);
                    return Some(StreamId::new(s as u8).expect("stream id in range"));
                }
            }
        }
        None
    }
}

fn alloc_stream(
    allocs: &mut HashMap<TspId, StreamAlloc>,
    tsp: TspId,
    start: u64,
    end: u64,
) -> Result<StreamId, CosimError> {
    allocs
        .entry(tsp)
        .or_insert_with(StreamAlloc::new)
        .alloc(start, end)
        .ok_or(CosimError::StreamExhausted { tsp, cycle: start })
}

/// Lowers the transfers onto minimal paths, generates per-TSP chip
/// programs, materializes every delivery from the static schedule,
/// executes each chip exactly once — depth levels in parallel — and checks
/// emissions and destination SRAM bit-for-bit.
pub fn run_transfers(
    topo: &Topology,
    transfers: &[CosimTransfer],
) -> Result<CosimReport, CosimError> {
    run_transfers_impl(topo, transfers, true)
}

/// [`run_transfers`] with all chips executed on the calling thread, in
/// ascending (depth, TspId) order. Bit-identical to the parallel engine —
/// the determinism tests and benches compare the two.
pub fn run_transfers_serial(
    topo: &Topology,
    transfers: &[CosimTransfer],
) -> Result<CosimReport, CosimError> {
    run_transfers_impl(topo, transfers, false)
}

fn run_transfers_impl(
    topo: &Topology,
    transfers: &[CosimTransfer],
    parallel: bool,
) -> Result<CosimReport, CosimError> {
    let slot = vector_slot_cycles();
    let mut occupancy = LinkOccupancy::new();
    let mut programs: HashMap<TspId, ChipProgram> = HashMap::new();
    let mut sims: HashMap<TspId, ChipSim> = HashMap::new();
    let mut arrivals = Vec::with_capacity(transfers.len());
    // What the schedule promises each chip will emit: (cycle, port, payload).
    let mut expected_emissions: HashMap<TspId, Vec<(u64, u8, Payload)>> = HashMap::new();
    // Hop depth of each participating chip (max position over its paths).
    let mut depth: HashMap<TspId, usize> = HashMap::new();
    // Each (from, to) route is computed once and reused across transfers.
    let mut routes: HashMap<(TspId, TspId), Path> = HashMap::new();
    let mut streams: HashMap<TspId, StreamAlloc> = HashMap::new();
    // Forwarding scratch space, bump-allocated per chip.
    let mut scratch_next: HashMap<TspId, u16> = HashMap::new();

    for tr in transfers.iter() {
        let path = match routes.entry((tr.from, tr.to)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(shortest_path(topo, tr.from, tr.to).map_err(CosimError::Route)?)
            }
        };
        assert!(!path.links.is_empty(), "cosim transfers must cross the network");
        let n = tr.data.len() as u64;
        // Injection starts after the source's SRAM read pipeline has had
        // time to stage the first vector.
        let sched = occupancy
            .schedule_transfer(topo, path, n, READ_LATENCY)
            .map_err(CosimError::Schedule)?;
        arrivals.push(sched.last_arrival);
        if n == 0 {
            continue;
        }
        // Per-hop block starts come straight off the schedule.
        let hop_starts = &sched.hop_starts;
        debug_assert_eq!(hop_starts.len(), path.links.len());

        // One shared handle per payload vector: the same bytes back the
        // source preload, every hop's delivery and every expected
        // emission, at one Arc clone (no 320-byte copy) per use.
        let payload: Vec<Payload> = tr.data.iter().map(|v| Arc::new(v.clone())).collect();

        for (h, &tsp) in path.tsps.iter().enumerate() {
            let d = depth.entry(tsp).or_insert(0);
            *d = (*d).max(h);
        }

        // Preload the source SRAM with the payload.
        let src_sim = sims.entry(tr.from).or_default();
        for (v, p) in payload.iter().enumerate() {
            src_sim.preload(tr.src_slice, tr.src_offset + v as u16, Arc::clone(p));
        }

        // Source program: Read -> Send per vector.
        let send0 = hop_starts[0];
        let src_stream =
            alloc_stream(&mut streams, tr.from, send0 - READ_LATENCY, send0 + (n - 1) * slot)?;
        let src_port = port_of(topo, path, 0, tr.from);
        let prog = programs.entry(tr.from).or_default();
        for v in 0..n {
            let send_at = send0 + v * slot;
            prog.push(
                send_at - READ_LATENCY,
                Instruction::Read {
                    slice: tr.src_slice,
                    offset: tr.src_offset + v as u16,
                    stream: src_stream,
                    dir: Direction::East,
                },
            );
            prog.push(send_at, Instruction::Send { port: src_port, stream: src_stream });
        }

        // Intermediate hops: Receive -> Write -> Read -> Send. The vector
        // must be staged in local SRAM between arrival and forwarding
        // ("we use the local SRAM storage on each TSP to provide
        // intermediate buffering", §2.3) — a stream register alone would
        // be overwritten by the next arriving flit long before the
        // 398-cycle forwarding point. This staging is exactly what the
        // per-hop overhead pays for.
        for h in 1..path.links.len() {
            let tsp = path.tsps[h];
            let in_port = port_of(topo, path, h - 1, tsp);
            let out_port = port_of(topo, path, h, tsp);
            let in_latency = scheduled_link_latency(topo, path.links[h - 1]);
            let arrive0 = hop_starts[h - 1] + slot + in_latency;
            let forward0 = hop_starts[h];
            let in_stream =
                alloc_stream(&mut streams, tsp, arrive0, arrive0 + (n - 1) * slot + 1)?;
            let out_stream = alloc_stream(
                &mut streams,
                tsp,
                forward0 - READ_LATENCY,
                forward0 + (n - 1) * slot,
            )?;
            let scratch = scratch_base(&mut scratch_next, tsp, n as u16);
            let prog = programs.entry(tsp).or_default();
            for v in 0..n {
                let arrive = arrive0 + v * slot;
                let forward = forward0 + v * slot;
                debug_assert!(forward >= arrive + 1 + READ_LATENCY + 1);
                prog.push(arrive, Instruction::Receive { port: in_port, stream: in_stream });
                prog.push(
                    arrive + 1,
                    Instruction::Write {
                        slice: SCRATCH_SLICE,
                        offset: scratch + v as u16,
                        stream: in_stream,
                    },
                );
                prog.push(
                    forward - READ_LATENCY,
                    Instruction::Read {
                        slice: SCRATCH_SLICE,
                        offset: scratch + v as u16,
                        stream: out_stream,
                        dir: Direction::East,
                    },
                );
                prog.push(forward, Instruction::Send { port: out_port, stream: out_stream });
            }
        }

        // Destination: Receive -> Write.
        let last = path.links.len() - 1;
        let dst_port = port_of(topo, path, last, tr.to);
        let out_latency = scheduled_link_latency(topo, path.links[last]);
        let dst_arrive0 = hop_starts[last] + slot + out_latency;
        let dst_stream =
            alloc_stream(&mut streams, tr.to, dst_arrive0, dst_arrive0 + (n - 1) * slot + 1)?;
        let prog = programs.entry(tr.to).or_default();
        for v in 0..n {
            let arrive = dst_arrive0 + v * slot;
            prog.push(arrive, Instruction::Receive { port: dst_port, stream: dst_stream });
            prog.push(
                arrive + 1,
                Instruction::Write {
                    slice: tr.dst_slice,
                    offset: tr.dst_offset + v as u16,
                    stream: dst_stream,
                },
            );
        }

        // Materialize every delivery and every promised emission straight
        // from the schedule: the O(1) topology port index maps each
        // sending port to its (link, peer, peer port) once per hop — the
        // old engine re-scanned the whole link table once per flit.
        for h in 0..path.links.len() {
            let sender = path.tsps[h];
            let out_port = port_of(topo, path, h, sender);
            let (link, peer, peer_port) =
                topo.port_peer(sender, out_port).expect("scheduled port is wired");
            debug_assert_eq!(link, path.links[h]);
            debug_assert_eq!(peer, path.tsps[h + 1]);
            let latency = scheduled_link_latency(topo, path.links[h]);
            let promised = expected_emissions.entry(sender).or_default();
            for (v, p) in payload.iter().enumerate() {
                promised.push((hop_starts[h] + v as u64 * slot, out_port, Arc::clone(p)));
            }
            let peer_sim = sims.entry(peer).or_default();
            for (v, p) in payload.iter().enumerate() {
                let arrive = hop_starts[h] + (v as u64 + 1) * slot + latency;
                peer_sim.deliver(peer_port, arrive, Arc::clone(p));
            }
        }
    }

    let instructions: usize = programs.values().map(|p| p.len()).sum();

    // Group chips into hop-depth levels: a chip at depth d receives only
    // from chips at depth < d, so levels execute in topological order and
    // chips within a level are mutually independent.
    let mut chips: Vec<TspId> = programs.keys().copied().collect();
    chips.sort();
    let mut levels: Vec<Vec<TspId>> = Vec::new();
    for tsp in chips {
        let d = depth[&tsp];
        if levels.len() <= d {
            levels.resize(d + 1, Vec::new());
        }
        levels[d].push(tsp);
    }

    let mut retire_cycles = HashMap::new();
    for level in levels {
        if level.is_empty() {
            continue;
        }
        let work: Vec<(TspId, ChipSim, &ChipProgram)> = level
            .iter()
            .map(|&t| {
                (t, sims.remove(&t).unwrap_or_default(), programs.get(&t).expect("leveled chip"))
            })
            .collect();
        // Each chip runs exactly once; results merge in ascending TspId
        // order whether executed serially or on scoped threads.
        for (tsp, result, sim) in run_level(work, parallel) {
            let retire = result.map_err(|error| CosimError::Chip { tsp, error })?;
            verify_emissions(tsp, &sim, expected_emissions.remove(&tsp))?;
            retire_cycles.insert(tsp, retire);
            sims.insert(tsp, sim);
        }
    }

    // Verify destination SRAM contents bit-for-bit and fingerprint them.
    let mut dst_digests = Vec::with_capacity(transfers.len());
    for (idx, tr) in transfers.iter().enumerate() {
        let sim = sims.get(&tr.to).expect("destination simulated");
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for (v, expected) in tr.data.iter().enumerate() {
            match sim.sram(tr.dst_slice, tr.dst_offset + v as u16) {
                Some(got) if got == expected => {
                    acc = (acc ^ got.digest()).wrapping_mul(0x100_0000_01b3);
                }
                _ => return Err(CosimError::DataMismatch { transfer: idx, vector: v }),
            }
        }
        dst_digests.push(acc);
    }

    Ok(CosimReport { retire_cycles, instructions, arrivals, dst_digests })
}

/// Executes one depth level of chips, each exactly once.
///
/// In parallel mode the level is split into contiguous chunks over scoped
/// threads (`std::thread::scope`, no extra dependency); joining the chunks
/// in spawn order restores ascending `TspId` order, so the merged result —
/// and therefore every downstream observable — is bit-identical to the
/// serial engine no matter how the OS schedules the workers.
fn run_level(
    work: Vec<(TspId, ChipSim, &ChipProgram)>,
    parallel: bool,
) -> Vec<(TspId, Result<u64, ExecError>, ChipSim)> {
    fn exec_one(
        (tsp, mut sim, prog): (TspId, ChipSim, &ChipProgram),
    ) -> (TspId, Result<u64, ExecError>, ChipSim) {
        let result = sim.run(prog);
        (tsp, result, sim)
    }

    let threads = if parallel {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(work.len())
    } else {
        1
    };
    if threads <= 1 {
        return work.into_iter().map(exec_one).collect();
    }
    let chunk_size = work.len().div_ceil(threads);
    let mut chunks: Vec<Vec<(TspId, ChipSim, &ChipProgram)>> = Vec::with_capacity(threads);
    let mut it = work.into_iter();
    loop {
        let chunk: Vec<_> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(exec_one).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chip worker panicked"))
            .collect()
    })
}

/// Compares a chip's actual emissions against the schedule's promise.
///
/// Both sides are sorted by (cycle, port) — a unique key, since a port
/// engine serializes its sends — so the comparison is order-canonical.
fn verify_emissions(
    tsp: TspId,
    sim: &ChipSim,
    promised: Option<Vec<(u64, u8, Payload)>>,
) -> Result<(), CosimError> {
    let mut want = promised.unwrap_or_default();
    want.sort_by_key(|&(cycle, port, _)| (cycle, port));
    let mut got: Vec<(u64, u8, &Payload)> =
        sim.emissions().iter().map(|e| (e.cycle, e.port, &e.vector)).collect();
    got.sort_by_key(|&(cycle, port, _)| (cycle, port));
    for i in 0..want.len().max(got.len()) {
        match (want.get(i), got.get(i)) {
            (Some(&(wc, wp, ref wv)), Some(&(gc, gp, gv))) => {
                if wc != gc || wp != gp || wv.as_ref() != gv.as_ref() {
                    return Err(CosimError::EmissionMismatch { tsp, cycle: gc.min(wc), port: gp });
                }
            }
            (Some(&(wc, wp, _)), None) => {
                return Err(CosimError::EmissionMismatch { tsp, cycle: wc, port: wp });
            }
            (None, Some(&(gc, gp, _))) => {
                return Err(CosimError::EmissionMismatch { tsp, cycle: gc, port: gp });
            }
            (None, None) => unreachable!(),
        }
    }
    Ok(())
}

/// The port number `tsp` uses on hop `h`'s link.
fn port_of(topo: &Topology, path: &Path, h: usize, tsp: TspId) -> u8 {
    let l = topo.link(path.links[h]);
    if l.a == tsp {
        l.a_port
    } else {
        debug_assert_eq!(l.b, tsp);
        l.b_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize, seed: u8) -> Vec<Vector> {
        (0..n).map(|i| Vector::from_fn(|b| (b as u8) ^ seed.wrapping_add(i as u8))).collect()
    }

    #[test]
    fn single_hop_transfer_delivers_bit_exact() {
        let topo = Topology::single_node();
        let tr = CosimTransfer {
            from: TspId(0),
            to: TspId(1),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 4,
            dst_offset: 100,
            data: payload(20, 7),
        };
        let report = run_transfers(&topo, &[tr]).unwrap();
        assert_eq!(report.arrivals.len(), 1);
        assert!(report.instructions >= 20 * 4);
        assert!(report.retire_cycles[&TspId(1)] >= report.arrivals[0]);
    }

    #[test]
    fn two_hop_transfer_forwards_through_intermediate() {
        // Cross-node transfer between TSPs without a direct cable: the
        // intermediate TSP's program receives and re-sends every flit.
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let from = TspId(0);
        // pick a destination with no direct link to TSP 0
        let to = topo
            .tsps()
            .find(|&t| t.node() != from.node() && topo.links_between(from, t).is_empty())
            .expect("some non-adjacent cross-node TSP");
        let tr = CosimTransfer {
            from,
            to,
            src_slice: 1,
            src_offset: 0,
            dst_slice: 2,
            dst_offset: 0,
            data: payload(8, 31),
        };
        let report = run_transfers(&topo, &[tr]).unwrap();
        // three chips participated: source, forwarder, destination
        assert!(report.retire_cycles.len() >= 3, "{:?}", report.retire_cycles);
    }

    #[test]
    fn concurrent_transfers_share_the_fabric() {
        let topo = Topology::single_node();
        let transfers: Vec<CosimTransfer> = (0..4u32)
            .map(|i| CosimTransfer {
                from: TspId(i),
                to: TspId(i + 4),
                src_slice: 0,
                src_offset: 0,
                dst_slice: 1,
                dst_offset: 0,
                data: payload(10, i as u8),
            })
            .collect();
        let report = run_transfers(&topo, &transfers).unwrap();
        assert_eq!(report.arrivals.len(), 4);
    }

    #[test]
    fn cosim_is_deterministic() {
        let topo = Topology::single_node();
        let run = || {
            let tr = CosimTransfer {
                from: TspId(2),
                to: TspId(6),
                src_slice: 0,
                src_offset: 0,
                dst_slice: 0,
                dst_offset: 0,
                data: payload(32, 5),
            };
            let r = run_transfers(&topo, &[tr]).unwrap();
            (r.arrivals, r.instructions, r.dst_digests)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn arrival_matches_network_schedule_formula() {
        let topo = Topology::single_node();
        let n = 16u64;
        let tr = CosimTransfer {
            from: TspId(0),
            to: TspId(7),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 0,
            dst_offset: 0,
            data: payload(n as usize, 1),
        };
        let report = run_transfers(&topo, &[tr]).unwrap();
        // schedule starts after the 5-cycle SRAM read pipeline
        assert_eq!(report.arrivals[0], 5 + n * vector_slot_cycles() + 228);
    }

    /// The satellite determinism contract: a multi-node workload produces
    /// a parallel `CosimReport` (retire cycles, arrivals, instruction
    /// count) and destination SRAM bytes identical to a serial run.
    #[test]
    fn parallel_engine_is_bit_identical_to_serial() {
        // Cross-node perfect matching over direct cables: every node-0 TSP
        // streams to a distinct node-1 TSP, so both depth levels hold 8
        // independent chips — real work for the parallel engine.
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let mut taken = std::collections::HashSet::new();
        let transfers: Vec<CosimTransfer> = (0..8u32)
            .map(|i| {
                let from = TspId(i);
                let to = topo
                    .tsps()
                    .find(|&t| {
                        t.node() != from.node()
                            && !taken.contains(&t)
                            && !topo.links_between(from, t).is_empty()
                    })
                    .expect("unused direct cross-node peer");
                taken.insert(to);
                CosimTransfer {
                    from,
                    to,
                    src_slice: 0,
                    src_offset: (i * 64) as u16,
                    dst_slice: 2,
                    dst_offset: (i * 64) as u16,
                    data: payload(12 + i as usize, i as u8),
                }
            })
            .collect();
        let serial = run_transfers_serial(&topo, &transfers).unwrap();
        let parallel = run_transfers(&topo, &transfers).unwrap();
        assert_eq!(serial, parallel);
        // and the parallel engine is reproducible run to run
        assert_eq!(parallel, run_transfers(&topo, &transfers).unwrap());
    }

    /// More flows than stream registers, serialized on one cable: liveness
    /// tracking recycles registers, so 40 sequential flows through one
    /// chip succeed bit-exactly (the old modulo-32 allocator would wrap
    /// onto live registers under concurrency instead of recycling dead
    /// ones).
    #[test]
    fn stream_registers_recycle_across_serialized_flows() {
        let topo = Topology::single_node();
        let transfers: Vec<CosimTransfer> = (0..40u32)
            .map(|i| CosimTransfer {
                from: TspId(0),
                to: TspId(1),
                src_slice: 0,
                src_offset: (i * 4) as u16,
                dst_slice: 1,
                dst_offset: (i * 4) as u16,
                data: payload(4, i as u8),
            })
            .collect();
        let report = run_transfers(&topo, &transfers).unwrap();
        assert_eq!(report.arrivals.len(), 40);
    }

    #[test]
    fn stream_exhaustion_is_reported_not_wrapped() {
        let mut a = StreamAlloc::new();
        for _ in 0..MAX_STREAMS {
            assert!(a.alloc(0, 100).is_some());
        }
        // a 33rd simultaneously-live flow has no register
        assert!(a.alloc(50, 60).is_none());
        // but once the live ranges end, registers recycle
        assert_eq!(a.alloc(101, 200), StreamId::new(0).ok());
    }

    /// A forged delivery that disagrees with the payload the schedule
    /// promised must surface as an error, not silent corruption.
    #[test]
    fn emission_verification_catches_payload_divergence() {
        let sim_emits = |v: Vector| {
            let mut sim = ChipSim::new();
            sim.preload(0, 0, v);
            let prog = ChipProgram::new()
                .at(0, Instruction::Read {
                    slice: 0,
                    offset: 0,
                    stream: StreamId::new(0).unwrap(),
                    dir: Direction::East,
                })
                .at(10, Instruction::Send { port: 3, stream: StreamId::new(0).unwrap() });
            sim.run(&prog).unwrap();
            sim
        };
        let promise = vec![(10u64, 3u8, Arc::new(Vector::splat(7)))];
        assert!(verify_emissions(TspId(0), &sim_emits(Vector::splat(7)), Some(promise.clone()))
            .is_ok());
        assert_eq!(
            verify_emissions(TspId(0), &sim_emits(Vector::splat(8)), Some(promise)),
            Err(CosimError::EmissionMismatch { tsp: TspId(0), cycle: 10, port: 3 })
        );
    }
}
