//! Drives [`Runtime::launch`] in [`ExecMode::Datapath`] over a marginal
//! cable: payload bytes really traverse the BER channel, FEC corrects
//! single flips in situ, and uncorrectable packets trigger the
//! replay → blame → failover → recompile loop. Every recovered launch
//! must land destination SRAM bit-identical to the fault-free run.
//!
//! ```sh
//! cargo run -p tsm-core --example fault_demo
//! ```

use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::runtime::{ExecMode, Runtime, SparePolicy};
use tsm_core::system::System;
use tsm_topology::{LinkId, NodeId, TspId};

/// Compute on TSP 0, stream 32 KB to TSP 15 (a multi-hop cross-node
/// route), compute on the result.
fn pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 1_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes: 32_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn runtime() -> Runtime {
    Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath)
}

fn main() {
    let reference = {
        let mut rt = runtime();
        rt.set_ber(0.0, 0.0);
        rt.launch(&pipeline(), 0).unwrap()
    };
    println!(
        "fault-free: attempts={} corrected={} dst_digests={:016x?}",
        reference.attempts(),
        reference.fec_total().corrected,
        reference.dst_digests
    );

    for seed in 0..4u64 {
        let mut rt = runtime();
        // Healthy cables perfect; every cable touching node 1 marginal,
        // at a BER where double flips routinely defeat SEC-DED.
        rt.set_ber(0.0, 2e-4);
        let victim = NodeId(1);
        let marginal: Vec<LinkId> = rt
            .system()
            .topology()
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        for l in marginal {
            rt.degrade_link(l);
        }
        match rt.launch(&pipeline(), seed) {
            Ok(out) => println!(
                "seed {seed}    : attempts={} corrected={} uncorrectable={} \
                 failovers={:?} bit_identical={}",
                out.attempts(),
                out.fec_total().corrected,
                out.fec_total().uncorrectable,
                out.failovers,
                out.dst_digests == reference.dst_digests
            ),
            Err(e) => println!("seed {seed}    : unrecovered: {e}"),
        }
    }
}
