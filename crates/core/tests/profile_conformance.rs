//! The conformance invariant, machine-checked end to end: a fault-free
//! run delivers every vector on exactly the cycle the compiler promised
//! (zero skew, serial and parallel alike), and a replayed launch shows
//! nonzero, deterministic, itemized per-link skew — one whole epoch
//! window per replay.

use std::sync::Arc;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::cosim::{compile_plan, CompiledPlan, CosimTransfer, PlanExecutor, TransferShape};
use tsm_core::runtime::{ExecMode, Runtime, SparePolicy};
use tsm_core::system::System;
use tsm_isa::Vector;
use tsm_topology::{LinkId, NodeId, Topology, TspId};
use tsm_trace::profile::{profile, Conformance, ProfileError};
use tsm_trace::{names, RingSink};

type Payload = Arc<Vector>;

/// A fixed multi-hop workload: three transfers across a two-node fabric,
/// including a cross-node route that must traverse C2C links.
fn workload() -> (Topology, Vec<CosimTransfer>) {
    let topo = Topology::fully_connected_nodes(2).unwrap();
    let mk = |idx: usize, from: u32, to: u32, vectors: usize, seed: u8| CosimTransfer {
        from: TspId(from),
        to: TspId(to),
        src_slice: (idx % 8) as u8,
        src_offset: (idx * 32) as u16,
        dst_slice: ((idx + 1) % 8) as u8,
        dst_offset: (idx * 32) as u16,
        data: (0..vectors)
            .map(|v| Vector::from_fn(|b| (b as u8) ^ seed.wrapping_add((idx * 31 + v) as u8)))
            .collect(),
    };
    let transfers = vec![
        mk(0, 0, 9, 12, 0x5a),
        mk(1, 7, 3, 7, 0x21),
        mk(2, 14, 2, 5, 0xe7),
    ];
    (topo, transfers)
}

fn compiled(topo: &Topology, transfers: &[CosimTransfer]) -> (CompiledPlan, Vec<Vec<Payload>>) {
    let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
    let plan = compile_plan(topo, &shapes).unwrap();
    let payloads = transfers.iter().map(CosimTransfer::payload).collect();
    (plan, payloads)
}

/// Fault-free executor runs — serial and parallel — certify against the
/// plan: every delivery observed exactly once at exactly its scheduled
/// cycle, on every link.
#[test]
fn fault_free_runs_certify_with_zero_skew_serial_and_parallel() {
    let (topo, transfers) = workload();
    let (plan, payloads) = compiled(&topo, &transfers);
    let planned = plan.planned_timeline(&topo);
    assert!(!planned.hops.is_empty(), "workload crosses links");

    for parallel in [false, true] {
        let sink = Arc::new(RingSink::new(1 << 16));
        let mut exec = PlanExecutor::new();
        exec.set_trace_sink(sink.clone());
        if parallel {
            exec.execute(&plan, &payloads).unwrap();
        } else {
            exec.execute_serial(&plan, &payloads).unwrap();
        }

        let prof = profile(&planned, &sink.sorted_events(), sink.dropped()).unwrap();
        assert!(
            prof.certified(),
            "mode parallel={parallel}: {:?}",
            prof.conformance
        );
        assert_eq!(
            prof.conformance,
            Conformance::Certified {
                deliveries: planned.hops.len() as u64
            }
        );
        // Every link's observed delivery count equals its planned count,
        // and every used link shows nonzero occupancy.
        for l in &prof.links {
            assert_eq!(l.observed as usize, l.planned as usize, "link {}", l.link);
            assert!(l.busy > 0 && l.utilization > 0.0, "link {}", l.link);
        }
        // The critical path closes the schedule: its length is the latest
        // scheduled arrival, and its transfer carries zero slack.
        let cp = prof.critical_path.as_ref().unwrap();
        assert_eq!(cp.length, planned.arrivals.iter().copied().max().unwrap());
        assert!(!cp.hops.is_empty());
        let s = prof
            .slack
            .iter()
            .find(|s| s.transfer == cp.transfer)
            .unwrap();
        assert_eq!(s.slack, 0);
    }
}

fn logical_pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes: 32_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn datapath_runtime() -> Runtime {
    Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath)
}

/// A clean `Runtime::launch` certifies too: the launch timeline's epoch
/// offset (alignment window) normalizes away, and the single attempt's
/// deliveries land cycle-exact.
#[test]
fn clean_datapath_launch_certifies_end_to_end() {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = datapath_runtime().with_trace_sink(sink.clone());
    let out = rt.launch(&logical_pipeline(), 1).unwrap();
    assert_eq!(out.attempts(), 1);

    let planned = rt
        .planned_timeline()
        .expect("datapath launch compiled a plan");
    let prof = profile(&planned, &sink.sorted_events(), sink.dropped()).unwrap();
    assert!(prof.certified(), "{:?}", prof.conformance);
    assert_eq!(prof.epochs.len(), 1, "one attempt, one epoch window");
    assert!(!prof.chips.is_empty(), "chip breakdown present");
}

/// Marks every cable into `victim` marginal at a BER where a replay
/// usually clears the fault without needing a failover.
fn marginal_runtime(victim: NodeId) -> Runtime {
    let mut rt = datapath_runtime();
    rt.set_ber(0.0, 2e-5);
    let bad: Vec<LinkId> = rt
        .system()
        .topology()
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
        .map(|(i, _)| LinkId(i as u32))
        .collect();
    for l in bad {
        rt.degrade_link(l);
    }
    rt
}

fn replay_profile(seed: u64) -> Option<tsm_trace::LaunchProfile> {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = marginal_runtime(NodeId(1)).with_trace_sink(sink.clone());
    let out = rt.launch(&logical_pipeline(), seed).ok()?;
    // Replay-only recovery: a second attempt on the *same* plan, no
    // failover, so the final plan is also attempt 0's plan.
    if out.attempts() != 2 || !out.failovers.is_empty() {
        return None;
    }
    let planned = rt.planned_timeline().unwrap();
    Some(profile(&planned, &sink.sorted_events(), sink.dropped()).unwrap())
}

/// A replayed launch is deviant with *itemized, deterministic* skew: the
/// successful attempt's deliveries all land exactly one epoch window
/// after their planned cycles, and re-running the same seed reproduces
/// the profile bit-for-bit.
#[test]
fn replayed_launch_itemizes_one_epoch_window_of_skew() {
    let (seed, prof) = (0..64u64)
        .find_map(|s| replay_profile(s).map(|p| (s, p)))
        .expect("some seed replays without failing over");

    assert_eq!(prof.epochs.len(), 2, "two attempts, two epoch windows");
    let window = (prof.epochs[1] - prof.epochs[0]) as i64;
    assert!(window > 0);

    let Conformance::Deviant {
        matched,
        deviations,
        missing,
        duplicates,
        unplanned,
    } = &prof.conformance
    else {
        panic!("a replayed launch cannot certify: {:?}", prof.conformance);
    };
    // The clean second attempt redelivered the whole plan, one window
    // late: every planned hop appears as a deviation with skew == window.
    let planned_hops: u64 = prof.links.iter().map(|l| u64::from(l.planned)).sum();
    assert_eq!(deviations.len() as u64, planned_hops);
    for d in deviations {
        assert_eq!(d.skew, window, "replay skew is the epoch window");
        assert_eq!(d.observed as i64 - d.planned as i64, window);
    }
    // Attempt 0's partial deliveries landed on plan (skew 0) before the
    // abort, so they count as matched and re-observations as duplicates.
    assert_eq!(matched, duplicates);
    assert!(missing.is_empty(), "the replay redelivered everything");
    assert_eq!(*unplanned, 0, "no failover, so no recompiled-plan hops");

    // Determinism: the same seed reproduces the identical profile.
    assert_eq!(replay_profile(seed).unwrap(), prof);
}

/// The profiler refuses a lossy trace outright, and the executor surfaces
/// the loss as a metrics gauge so it is visible without holding the sink.
#[test]
fn lossy_traces_are_refused_and_surfaced_in_metrics() {
    let (topo, transfers) = workload();
    let (plan, payloads) = compiled(&topo, &transfers);
    let planned = plan.planned_timeline(&topo);

    let sink = Arc::new(RingSink::new(4)); // far too small for this run
    let mut exec = PlanExecutor::new();
    exec.set_trace_sink(sink.clone());
    let report = exec.execute(&plan, &payloads).unwrap();

    let dropped = sink.dropped();
    assert!(dropped > 0, "the tiny ring must evict");
    assert_eq!(
        profile(&planned, &sink.sorted_events(), dropped),
        Err(ProfileError::LossyTrace { dropped })
    );
    assert_eq!(report.metrics.gauge(names::TRACE_DROPPED), Some(dropped));
}
