//! Windowed-telemetry invariants, machine-checked end to end:
//!
//! - **Off-identity**: with telemetry disabled, launch and serve produce
//!   event sequences and records bit-identical to a build without the
//!   feature — the only difference an enabled run may introduce is the
//!   `telemetry` field itself.
//! - **Reproducibility**: the same seed reproduces the identical
//!   telemetry, byte for byte through the JSON round trip.
//! - **Heatmap fidelity**: per-link delivery counts and per-chip busy
//!   cycles agree exactly with the trace events of the same run.
//! - **SLO accounting**: per-tenant met+missed partitions the tenant's
//!   terminal requests (served + expired).
//! - **Loss accounting**: under telemetry sampling, the `trace.dropped`
//!   gauge, the sink's counter, and the exporter's warning banner agree —
//!   and sampling itself never drops (it does not go through the sink).
//! - **Escaping**: hostile tenant names survive the JSON and Perfetto
//!   exports via the in-repo escapers.

use std::sync::Arc;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::runtime::{ExecMode, LaunchOutcome, Runtime, SparePolicy};
use tsm_core::serving::{Request, RequestOutcome, ServeConfig, ServeReport, Server};
use tsm_core::system::System;
use tsm_topology::TspId;
use tsm_trace::telemetry::{series, TelemetryConfig};
use tsm_trace::{chrome_trace_json_telemetry, names, EventKind, RingSink, TraceEvent};

/// Window small enough that a single launch spans several windows.
const TEL: TelemetryConfig = TelemetryConfig {
    window: 4096,
    slo_permille: 990,
};

/// The multi-hop pipeline from the identity suite: compute, a cross-node
/// transfer, dependent compute — so datapath launches move real payloads
/// and emit `Delivery` events for the heatmaps.
fn pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes: 32_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn runtime() -> Runtime {
    Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath)
}

fn launch_with(tel: Option<TelemetryConfig>) -> (LaunchOutcome, Vec<TraceEvent>) {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = runtime().with_trace_sink(sink.clone());
    if let Some(cfg) = tel {
        rt.set_telemetry(cfg);
    }
    let out = rt.launch(&pipeline(), 7).unwrap();
    assert_eq!(sink.dropped(), 0);
    (out, sink.sorted_events())
}

#[test]
fn launch_telemetry_off_is_bit_identical_and_on_only_adds_the_field() {
    let (off, ev_off) = launch_with(None);
    let (on, ev_on) = launch_with(Some(TEL));
    assert!(off.telemetry.is_none(), "disabled runs carry no telemetry");
    let t = on.telemetry.clone().expect("enabled runs carry telemetry");
    assert!(!t.is_empty());
    assert_eq!(t.window, TEL.window);
    // Same events, same everything-else: sampling only observes.
    assert_eq!(ev_on, ev_off, "telemetry must not perturb the trace");
    let mut stripped = on.clone();
    stripped.telemetry = None;
    assert_eq!(stripped, off, "outcome differs only in the telemetry field");
}

/// The heatmaps are derived from the same simulation the trace records,
/// so they must agree exactly: total deliveries per run equals the count
/// of `Delivery` events, and total chip-busy cycles equals the summed
/// width of the `ChipExec` spans.
#[test]
fn launch_heatmaps_agree_with_the_trace() {
    let (on, events) = launch_with(Some(TEL));
    let t = on.telemetry.unwrap();

    let traced_deliveries = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Delivery { .. }))
        .count() as u64;
    assert!(traced_deliveries > 0, "the pipeline crosses links");
    let sampled_deliveries: u64 = t
        .labels(series::LINK_DELIVERIES)
        .iter()
        .map(|l| t.get(series::LINK_DELIVERIES, l).unwrap().total())
        .sum();
    assert_eq!(sampled_deliveries, traced_deliveries);

    let traced_busy: u64 = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ChipExec { .. }))
        .map(|e| e.dur)
        .sum();
    let sampled_busy: u64 = t
        .labels(series::CHIP_BUSY)
        .iter()
        .map(|l| t.get(series::CHIP_BUSY, l).unwrap().total())
        .sum();
    assert_eq!(sampled_busy, traced_busy);
    assert!(
        t.labels(series::CHIP_BUSY).len() >= 2,
        "both endpoint chips were busy"
    );
}

/// A serving workload with every terminal outcome represented: tenant 0
/// is comfortable, tenant 1 has deadlines tight enough that some served
/// requests miss their SLO, and one request expires unlaunched.
fn offered_mixed() -> Vec<Request> {
    let mut offered = Vec::new();
    for i in 0..4u64 {
        offered.push(Request {
            at: i * 200,
            tenant: 0,
            model: 0,
            priority: 1,
            deadline_slack: 10_000_000,
        });
        offered.push(Request {
            at: i * 200 + 50,
            tenant: 1,
            model: 0,
            priority: 1,
            deadline_slack: 5_000, // tighter than a batch's service time
        });
    }
    // Arrives while the server is busy and dies in the queue.
    offered.push(Request {
        at: 1_000,
        tenant: 1,
        model: 0,
        priority: 2,
        deadline_slack: 2_000,
    });
    offered
}

fn serve_with(tel: Option<TelemetryConfig>) -> (ServeReport, Vec<TraceEvent>) {
    let sink = Arc::new(RingSink::new(1 << 16));
    let rt = runtime().with_trace_sink(sink.clone());
    let cfg = ServeConfig {
        batch_window: 500,
        max_batch: 4,
        seed: 42,
        telemetry: tel,
        ..ServeConfig::default()
    };
    let mut server = Server::new(rt, cfg);
    server.add_model(|batch| {
        let mut g = pipeline();
        g.add(
            TspId(0),
            OpKind::Compute {
                cycles: 1_000 * batch as u64,
            },
            vec![],
        )
        .unwrap();
        g
    });
    let report = server.serve(&offered_mixed()).unwrap();
    assert_eq!(sink.dropped(), 0);
    (report, sink.sorted_events())
}

#[test]
fn serve_telemetry_off_is_bit_identical_and_on_only_adds_the_field() {
    let (off, ev_off) = serve_with(None);
    let (on, ev_on) = serve_with(Some(TEL));
    assert!(off.telemetry.is_none());
    assert!(on.telemetry.is_some());
    assert_eq!(ev_on, ev_off, "telemetry must not perturb the serve trace");
    // Strip every telemetry field (the report's and each batch
    // outcome's): what remains must be bit-identical to the off run.
    let mut stripped = on.clone();
    stripped.telemetry = None;
    for b in &mut stripped.batches {
        b.outcome.telemetry = None;
    }
    assert_eq!(stripped, off);
}

#[test]
fn serve_telemetry_is_bit_reproducible_through_json() {
    let (a, _) = serve_with(Some(TEL));
    let (b, _) = serve_with(Some(TEL));
    assert_eq!(a, b, "same seed, same report");
    let ta = a.telemetry.unwrap();
    let tb = b.telemetry.unwrap();
    assert_eq!(ta.to_json(), tb.to_json(), "byte-identical telemetry JSON");
    let round = tsm_trace::Telemetry::from_json(&ta.to_json()).unwrap();
    assert_eq!(round, ta, "JSON round trip is lossless");
}

#[test]
fn slo_series_partition_terminal_requests_per_tenant() {
    let (report, _) = serve_with(Some(TEL));
    let t = report.telemetry.as_ref().unwrap();
    assert!(report.expired > 0, "the workload exercises expiry");
    assert!(report.served > 0);

    for ten in &report.tenants {
        let label = format!("tenant{}", ten.tenant);
        let met = t.get(series::SLO_MET, &label).map_or(0, |s| s.total());
        let missed = t.get(series::SLO_MISSED, &label).map_or(0, |s| s.total());
        assert_eq!(
            met + missed,
            ten.served + ten.expired,
            "tenant {} SLO series must partition served+expired",
            ten.tenant
        );
        let throughput = t
            .get(series::SERVE_THROUGHPUT, &label)
            .map_or(0, |s| s.total());
        assert_eq!(throughput, ten.served);
    }
    // Tenant 1's tight deadlines miss; tenant 0's never do.
    assert!(t.get(series::SLO_MISSED, "tenant1").is_some());
    assert!(t.get(series::SLO_MISSED, "tenant0").is_none());
    // Attainment and burn rate are consistent views over the same series:
    // burn = miss_fraction / error_budget, budget = 1% at 990 permille.
    for (win, att) in t.attainment("tenant1") {
        assert!((0.0..=1.0).contains(&att));
        let burn = t
            .burn_rate("tenant1")
            .iter()
            .find(|(w, _)| *w == win)
            .map(|(_, b)| *b)
            .unwrap();
        assert!((burn - (1.0 - att) / 0.01).abs() < 1e-9);
    }
    // The queue-depth gauge saw at least the deepest backlog the serve
    // metrics report.
    let depth = t.get(series::SERVE_QUEUE_DEPTH, "").unwrap();
    let peak = depth.points.iter().map(|&(_, v)| v).max().unwrap();
    assert_eq!(
        peak,
        report.metrics.gauge(names::SERVE_QUEUE_DEPTH).unwrap()
    );
}

/// Serving heatmaps are the launches' heatmaps merged onto the serving
/// timeline: totals agree with the per-batch outcomes.
#[test]
fn serve_heatmaps_are_the_merged_launch_heatmaps() {
    let (report, _) = serve_with(Some(TEL));
    let t = report.telemetry.as_ref().unwrap();
    let total = |tel: &tsm_trace::Telemetry, name: &str| -> u64 {
        tel.labels(name)
            .iter()
            .map(|l| tel.get(name, l).unwrap().total())
            .sum()
    };
    let merged_deliveries = total(t, series::LINK_DELIVERIES);
    let batch_deliveries: u64 = report
        .batches
        .iter()
        .map(|b| {
            total(
                b.outcome.telemetry.as_ref().unwrap(),
                series::LINK_DELIVERIES,
            )
        })
        .sum();
    assert!(merged_deliveries > 0);
    assert_eq!(merged_deliveries, batch_deliveries);
    assert_eq!(
        total(t, series::CHIP_BUSY),
        report
            .batches
            .iter()
            .map(|b| total(b.outcome.telemetry.as_ref().unwrap(), series::CHIP_BUSY))
            .sum::<u64>()
    );
}

/// Satellite: under telemetry sampling, trace-loss accounting stays
/// coherent — the `trace.dropped` gauge equals the sink's counter, the
/// Perfetto banner reports the same number, and the sampler (which does
/// not go through the sink) still captures complete heatmaps.
#[test]
fn trace_dropped_gauge_and_banner_agree_under_telemetry_sampling() {
    // A full-size sink first, to know the true delivery count.
    let (full, full_events) = launch_with(Some(TEL));
    let expected_deliveries = full_events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Delivery { .. }))
        .count() as u64;

    // The gauge is set by the executor while it holds the sink; the
    // runtime-lane events emitted after it may evict a little more, so
    // the gauge lower-bounds the sink's final counter.
    let sink = Arc::new(RingSink::new(4)); // far too small for this run
    let mut rt = runtime().with_trace_sink(sink.clone());
    rt.set_telemetry(TEL);
    let out = rt.launch(&pipeline(), 7).unwrap();

    let dropped = sink.dropped();
    assert!(dropped > 0, "the tiny ring must evict");
    let gauge = out.metrics.gauge(names::TRACE_DROPPED).unwrap();
    assert!(
        gauge > 0 && gauge <= dropped,
        "gauge snapshots executor-time loss"
    );
    let banner = sink.chrome_trace();
    assert!(banner.contains(&format!(
        "WARNING: trace truncated — {dropped} event(s) dropped"
    )));
    assert!(banner.contains(&format!("\"dropped\":{dropped}")));
    // Sampling is not a sink client: the lossy trace loses events, the
    // telemetry loses nothing.
    let t = out.telemetry.unwrap();
    let sampled: u64 = t
        .labels(series::LINK_DELIVERIES)
        .iter()
        .map(|l| t.get(series::LINK_DELIVERIES, l).unwrap().total())
        .sum();
    assert_eq!(sampled, expected_deliveries);
    assert_eq!(t, full.telemetry.unwrap(), "loss-independent telemetry");
}

/// Satellite: hostile tenant names round-trip through the telemetry JSON
/// and the Perfetto counter-track export via the in-repo escapers.
#[test]
fn hostile_tenant_names_round_trip_through_both_exports() {
    let hostile = "ten\"ant\\zero\n\u{1}[end]";
    let sink = Arc::new(RingSink::new(1 << 16));
    let rt = runtime().with_trace_sink(sink.clone());
    let cfg = ServeConfig {
        seed: 3,
        telemetry: Some(TEL),
        ..ServeConfig::default()
    };
    let mut server = Server::new(rt, cfg);
    let model = server.add_model(|_| pipeline());
    server.name_tenant(0, hostile);
    assert_eq!(server.tenant_label(0), hostile);
    assert_eq!(server.tenant_label(9), "tenant9", "unnamed default");
    let report = server
        .serve(&[Request {
            at: 0,
            tenant: 0,
            model,
            priority: 0,
            deadline_slack: 10_000_000,
        }])
        .unwrap();
    assert!(matches!(report.outcomes[0], RequestOutcome::Served { .. }));
    let t = report.telemetry.unwrap();
    assert!(t.get(series::SERVE_THROUGHPUT, hostile).is_some());

    // JSON round trip preserves the name exactly.
    let round = tsm_trace::Telemetry::from_json(&t.to_json()).unwrap();
    assert_eq!(round, t);
    assert!(round.get(series::SERVE_THROUGHPUT, hostile).is_some());

    // The Perfetto export escapes it; the raw control byte never appears.
    let doc = chrome_trace_json_telemetry(&sink.sorted_events(), 0, &t);
    assert!(doc.contains(r#"serve.throughput[ten\"ant\\zero\n\u0001[end]]"#));
    assert!(!doc.contains('\u{1}'));
}
