//! Property coverage for the serving frontend: the `WorkQueue` really is
//! a total order over `(priority, deadline, insertion_seq)` under
//! arbitrary push/pop interleavings, and serving results are independent
//! of batch width — identical per-request outcomes, only latency (and
//! batching) differs.

use proptest::prelude::*;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::runtime::{Runtime, SparePolicy};
use tsm_core::serving::{Request, RequestOutcome, ServeConfig, Server, WorkQueue};
use tsm_core::system::System;
use tsm_topology::TspId;

/// Reference model: a flat list of `(priority, deadline, seq)` keys; pop
/// removes the minimum. `Vec::swap_remove` + full scan — obviously
/// correct, nothing shared with the heap implementation.
#[derive(Default)]
struct ModelQueue {
    entries: Vec<(u8, u64, u64)>,
    next_seq: u64,
}

impl ModelQueue {
    fn push(&mut self, priority: u8, deadline: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((priority, deadline, seq));
        seq
    }

    fn pop(&mut self) -> Option<u64> {
        let min = self.entries.iter().copied().min()?;
        self.entries.retain(|e| *e != min);
        Some(min.2)
    }
}

/// One compute-only model so statistical-mode launches stay cheap inside
/// the proptest loop.
fn tiny_model(batch: u32) -> Graph {
    let mut g = Graph::new();
    g.add(
        TspId(0),
        OpKind::Compute {
            cycles: 1_000 * batch as u64,
        },
        vec![],
    )
    .unwrap();
    g
}

fn server(cfg: ServeConfig) -> Server {
    let rt = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem);
    let mut s = Server::new(rt, cfg);
    s.add_model(tiny_model);
    s
}

/// Classifies an outcome without its width-dependent fields.
fn kind(o: &RequestOutcome) -> &'static str {
    match o {
        RequestOutcome::Shed => "shed",
        RequestOutcome::Expired { .. } => "expired",
        RequestOutcome::Served { .. } => "served",
    }
}

proptest! {
    /// Under any interleaving of pushes and pops, the queue dequeues
    /// exactly the reference model's sorted-key order — i.e. the order is
    /// total (the unique `seq` breaks every tie) and matches
    /// `(priority, deadline, insertion_seq)`.
    #[test]
    fn work_queue_total_order_matches_reference_model(
        ops in proptest::collection::vec((0u8..4, 0u8..3, 0u64..4), 1..64)
    ) {
        let mut queue: WorkQueue<u64> = WorkQueue::new(usize::MAX);
        let mut model = ModelQueue::default();
        for (op, priority, deadline) in ops {
            if op == 3 {
                // Pops must agree at every point, not just at the end.
                prop_assert_eq!(queue.pop(), model.pop());
            } else {
                let seq = model.push(priority, deadline);
                queue.try_push(priority, deadline, 0, seq).unwrap();
            }
            prop_assert_eq!(queue.len(), model.entries.len());
        }
        // Drain: the tail must come out in the total order too.
        while let Some(got) = queue.pop() {
            prop_assert_eq!(Some(got), model.pop());
        }
        prop_assert_eq!(model.pop(), None);
    }

    /// Serving the same offered timeline at batch width 1 and width 8
    /// yields identical per-request outcomes (served vs shed, per-tenant
    /// tallies) — batching only moves latency around. And each width is
    /// bit-reproducible: rerunning the same config gives the same report.
    #[test]
    fn serving_outcomes_are_independent_of_batch_width(
        seed in 0u64..1_000,
        arrivals in proptest::collection::vec((0u64..50_000, 0u32..3, 0u8..2), 1..10)
    ) {
        let offered: Vec<Request> = arrivals
            .iter()
            .map(|&(at, tenant, priority)| Request {
                at,
                tenant,
                model: 0,
                priority,
                // Ample slack: dispatch times (and therefore expiry) are
                // legitimately width-dependent, so this width-independence
                // property holds for requests that never expire. Deadline
                // enforcement has its own coverage in the serving unit
                // tests.
                deadline_slack: 1 << 40,
            })
            .collect();
        let cfg = |max_batch| ServeConfig {
            batch_window: 2_000,
            max_batch,
            queue_capacity: 1 << 16, // ample: no timing-dependent shedding
            seed,
            ..ServeConfig::default()
        };

        let narrow = server(cfg(1)).serve(&offered).unwrap();
        let wide = server(cfg(8)).serve(&offered).unwrap();

        // Identical per-request outcomes, only latency differs.
        prop_assert_eq!(narrow.outcomes.len(), wide.outcomes.len());
        for (n, w) in narrow.outcomes.iter().zip(wide.outcomes.iter()) {
            prop_assert_eq!(kind(n), kind(w));
        }
        prop_assert_eq!(narrow.served, wide.served);
        prop_assert_eq!(narrow.shed, wide.shed);
        prop_assert_eq!(narrow.tenants.len(), wide.tenants.len());
        for (n, w) in narrow.tenants.iter().zip(wide.tenants.iter()) {
            prop_assert_eq!(n.tenant, w.tenant);
            prop_assert_eq!((n.offered, n.served, n.shed), (w.offered, w.served, w.shed));
        }
        // Width 1 never folds; width 8 never splits below demand.
        prop_assert!(narrow.batches.iter().all(|b| b.size == 1));
        prop_assert!(wide.batches.len() <= narrow.batches.len());
        prop_assert_eq!(
            wide.batches.iter().map(|b| u64::from(b.size)).sum::<u64>(),
            wide.served
        );

        // Bit-reproducibility of a whole serve run from its config.
        let again = server(cfg(8)).serve(&offered).unwrap();
        prop_assert_eq!(again, wide);
    }
}
