//! Flight-recorder invariants, machine-checked end to end:
//!
//! - **Off-identity**: with the recorder disabled, the serve report and
//!   event sequence are bit-identical to a build without the feature —
//!   the only difference an armed run may introduce is the `incidents`
//!   field itself.
//! - **Trigger coverage**: sheds, in-queue expiries, SLO misses, and
//!   faulted (replaying/failing-over) launches each produce an incident
//!   whose snapshots agree with the run's own accounting.
//! - **Bounded capture**: the trace tail keeps the last K serving-lane
//!   events and `max_incidents` caps recording, visible as `seq` gaps.
//! - **Reproducibility**: a fault-injected serve run produces incidents
//!   byte-reproducible from its seed, lossless through JSON.
//! - **Telemetry bracketing**: each incident carries exactly the
//!   telemetry windows `[w-1, w+1]` around its trigger cycle.

use std::sync::Arc;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::flight::{FlightConfig, IncidentReport, IncidentTrigger};
use tsm_core::runtime::{ExecMode, Runtime, SparePolicy};
use tsm_core::serving::{Request, ServeConfig, ServeReport, Server};
use tsm_core::system::System;
use tsm_topology::{LinkId, NodeId, TspId};
use tsm_trace::telemetry::TelemetryConfig;
use tsm_trace::{RingSink, TraceEvent, SERVING_LANE};

fn pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes: 32_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn runtime() -> Runtime {
    Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath)
}

fn make_marginal(rt: &mut Runtime, victim: NodeId) {
    rt.set_ber(0.0, 2e-5);
    let bad: Vec<LinkId> = rt
        .system()
        .topology()
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
        .map(|(i, _)| LinkId(i as u32))
        .collect();
    for l in bad {
        rt.degrade_link(l);
    }
}

/// A hostile little workload: a tight queue (sheds), tight deadlines on
/// tenant 1 (expiries and SLO misses), and enough load to batch.
fn offered_hostile() -> Vec<Request> {
    let mut offered = Vec::new();
    for i in 0..6u64 {
        offered.push(Request {
            at: i * 100,
            tenant: 0,
            model: 0,
            priority: 1,
            deadline_slack: 10_000_000,
        });
        offered.push(Request {
            at: i * 100 + 25,
            tenant: 1,
            model: 0,
            priority: 1,
            deadline_slack: 5_000, // tighter than a batch's service time
        });
    }
    offered
}

fn serve_with(
    flight: Option<FlightConfig>,
    telemetry: Option<TelemetryConfig>,
    marginal: bool,
    seed: u64,
) -> (ServeReport, Vec<TraceEvent>) {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = runtime().with_trace_sink(sink.clone());
    if marginal {
        make_marginal(&mut rt, NodeId(1));
    }
    let cfg = ServeConfig {
        batch_window: 400,
        max_batch: 4,
        queue_capacity: 3,
        tenant_quota: 2,
        seed,
        telemetry,
        flight,
        ..ServeConfig::default()
    };
    let mut server = Server::new(rt, cfg);
    server.add_model(|batch| {
        let mut g = pipeline();
        g.add(
            TspId(0),
            OpKind::Compute {
                cycles: 1_000 * batch as u64,
            },
            vec![],
        )
        .unwrap();
        g
    });
    let report = server.serve(&offered_hostile()).unwrap();
    assert_eq!(sink.dropped(), 0);
    (report, sink.sorted_events())
}

const FLIGHT: FlightConfig = FlightConfig {
    trace_tail: 16,
    max_incidents: 32,
};

#[test]
fn flight_off_is_bit_identical_and_on_only_adds_the_field() {
    let (off, ev_off) = serve_with(None, None, false, 42);
    let (on, ev_on) = serve_with(Some(FLIGHT), None, false, 42);
    assert!(off.incidents.is_none(), "disabled runs carry no field");
    assert!(
        !on.incidents.as_ref().unwrap().is_empty(),
        "the hostile workload captures incidents"
    );
    assert_eq!(ev_on, ev_off, "the recorder must not perturb the trace");
    let mut stripped = on.clone();
    stripped.incidents = None;
    assert_eq!(stripped, off, "report differs only in the incidents field");
}

#[test]
fn triggers_cover_shed_expiry_and_slo_miss_and_snapshots_agree() {
    let (report, _) = serve_with(Some(FLIGHT), None, false, 42);
    assert!(report.shed > 0, "the tight queue sheds");
    assert!(report.expired > 0, "the tight deadlines expire in queue");
    let incidents = report.incidents.as_ref().unwrap();

    let count = |kind: &str| {
        incidents
            .iter()
            .filter(|i| i.trigger.kind() == kind)
            .count() as u64
    };
    assert_eq!(count("shed"), report.shed, "one incident per shed");
    assert_eq!(count("expired"), report.expired, "one per in-queue expiry");
    assert!(count("slo_miss") > 0, "late completions fire too");
    assert_eq!(count("fault") + count("deviant"), 0, "clean fabric");

    // Snapshots agree with the run's own configuration and ordering.
    let mut last_seq = None;
    for inc in incidents {
        assert_eq!(inc.queue_capacity, 3);
        assert_eq!(inc.tenant_quota, 2);
        assert!(inc.queue_depth <= inc.queue_capacity);
        assert!(inc.tracked_tenants <= 2);
        assert!(last_seq < Some(inc.seq) || last_seq.is_none());
        last_seq = Some(inc.seq);
        // The tail is serving-lane only, bounded, and in observation
        // order (batch completions are observed when dispatched, so
        // cycles need not be monotone — sequence numbers are).
        assert!(inc.trace_tail.len() <= FLIGHT.trace_tail);
        for pair in inc.trace_tail.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
        for e in &inc.trace_tail {
            assert_eq!(e.lane, SERVING_LANE);
        }
        assert!(inc.telemetry.is_none(), "no sampler, no telemetry block");
    }
    // With max_incidents ample, seq is gap-free from zero.
    let seqs: Vec<u64> = incidents.iter().map(|i| i.seq).collect();
    assert_eq!(seqs, (0..incidents.len() as u64).collect::<Vec<_>>());
}

#[test]
fn faulty_serve_incidents_are_byte_reproducible_from_seed() {
    // Find a seed whose marginal run actually replays or fails over.
    let seed = (0..64u64)
        .find(|&seed| {
            let (report, _) = serve_with(Some(FLIGHT), None, true, seed);
            report
                .incidents
                .as_ref()
                .unwrap()
                .iter()
                .any(|i| i.trigger.kind() == "fault")
        })
        .expect("some seed in 0..64 faults on the marginal fabric");
    let (a, ev_a) = serve_with(Some(FLIGHT), None, true, seed);
    let (b, ev_b) = serve_with(Some(FLIGHT), None, true, seed);
    assert_eq!(a, b, "same seed, same report");
    assert_eq!(ev_a, ev_b);
    let incidents = a.incidents.as_ref().unwrap();
    let fault = incidents
        .iter()
        .find(|i| i.trigger.kind() == "fault")
        .unwrap();
    let IncidentTrigger::Fault {
        replays, failovers, ..
    } = fault.trigger
    else {
        unreachable!("filtered on kind");
    };
    assert!(replays > 0 || failovers > 0);
    for (x, y) in incidents.iter().zip(b.incidents.as_ref().unwrap()) {
        assert_eq!(
            x.to_json(),
            y.to_json(),
            "byte-reproducible incident from seed"
        );
        let round = IncidentReport::from_json(&x.to_json()).unwrap();
        assert_eq!(round, *x, "JSON round trip is lossless");
    }
}

#[test]
fn max_incidents_caps_capture_and_keeps_the_earliest() {
    let tiny = FlightConfig {
        trace_tail: 8,
        max_incidents: 1,
    };
    let (report, _) = serve_with(Some(tiny), None, false, 42);
    let incidents = report.incidents.as_ref().unwrap();
    assert_eq!(incidents.len(), 1, "capture is bounded");
    assert_eq!(incidents[0].seq, 0, "the earliest trigger is kept");
    assert!(
        report.shed + report.expired > 1,
        "more triggers fired than were recorded"
    );
}

#[test]
fn telemetry_windows_bracket_each_incident() {
    let tel = TelemetryConfig {
        window: 4096,
        slo_permille: 990,
    };
    let (report, _) = serve_with(Some(FLIGHT), Some(tel), false, 42);
    let incidents = report.incidents.as_ref().unwrap();
    assert!(!incidents.is_empty());
    for inc in incidents {
        let w = inc.cycle / tel.window;
        assert_eq!(inc.telemetry_window, Some(w));
        let t = inc.telemetry.as_ref().expect("sampler was on");
        assert_eq!(t.window, tel.window);
        assert_eq!(t.slo_permille, tel.slo_permille);
        for s in &t.series {
            assert!(!s.points.is_empty(), "clipped series keep only real points");
            for &(pw, _) in &s.points {
                assert!(
                    (w.saturating_sub(1)..=w + 1).contains(&pw),
                    "window {pw} outside bracket around {w}"
                );
            }
        }
        // The full report telemetry is a superset of every bracket.
        let full = report.telemetry.as_ref().unwrap();
        for s in &t.series {
            let fs = full.get(&s.name, &s.label).expect("series exists in full");
            for p in &s.points {
                assert!(fs.points.contains(p));
            }
        }
    }
}
