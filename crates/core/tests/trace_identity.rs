//! Trace determinism contract: the event set a run records is a pure
//! function of (plan, payloads, fault model) — identical between serial
//! and parallel execution — and attaching a disabled sink leaves the
//! simulation bit-identical to an uninstrumented run.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, which makes the generator helpers (and an import
// they use) look dead to lints; the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use std::sync::Arc;
use tsm_core::cosim::{
    compile_plan, CompiledPlan, CosimTransfer, LinkFaultModel, PlanExecutor, TransferShape,
};
use tsm_isa::Vector;
use tsm_topology::{Topology, TspId};
use tsm_trace::{EventKind, NullSink, RingSink, TraceEvent};

use proptest::prelude::*;

type Payload = Arc<Vector>;

/// Raw generator output for one transfer: TSP picks are taken modulo the
/// topology size, `to` is offset past `from` so the endpoints differ.
type RawTransfer = (u32, u32, u8, u8, usize, u8);

fn raw_transfer() -> impl Strategy<Value = RawTransfer> {
    (0u32..16, 0u32..15, 0u8..8, 0u8..8, 1usize..=20, any::<u8>())
}

/// Materializes raw generator output against a concrete topology. SRAM
/// regions are spaced 32 offsets apart (> max vector count), so distinct
/// transfers never overlap in any chip's memory.
fn build_transfers(nodes: usize, raw: &[RawTransfer]) -> (Topology, Vec<CosimTransfer>) {
    let topo = if nodes <= 1 {
        Topology::single_node()
    } else {
        Topology::fully_connected_nodes(nodes).expect("topology builds")
    };
    let tsps = (nodes.max(1) * tsm_topology::TSPS_PER_NODE) as u32;
    let transfers = raw
        .iter()
        .enumerate()
        .map(|(idx, &(f, t, src_slice, dst_slice, vectors, seed))| {
            let from = f % tsps;
            let rest = t % (tsps - 1);
            let to = if rest >= from { rest + 1 } else { rest };
            CosimTransfer {
                from: TspId(from),
                to: TspId(to),
                src_slice,
                src_offset: (idx * 32) as u16,
                dst_slice,
                dst_offset: (idx * 32) as u16,
                data: (0..vectors)
                    .map(|v| {
                        Vector::from_fn(|b| (b as u8) ^ seed.wrapping_add((idx * 31 + v) as u8))
                    })
                    .collect(),
            }
        })
        .collect();
    (topo, transfers)
}

/// Runs `plan`+`payloads` with a fresh ring sink and returns the recorded
/// events, merged into the canonical `(cycle, lane, seq)` order.
fn traced_run(
    plan: &CompiledPlan,
    payloads: &[Vec<Payload>],
    parallel: bool,
    faults: Option<&LinkFaultModel>,
) -> Vec<TraceEvent> {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut exec = PlanExecutor::new();
    exec.set_trace_sink(sink.clone());
    let _ = match (parallel, faults) {
        (true, None) => exec.execute(plan, payloads),
        (false, None) => exec.execute_serial(plan, payloads),
        (true, Some(f)) => exec.execute_with_faults(plan, payloads, f),
        (false, Some(f)) => exec.execute_with_faults_serial(plan, payloads, f),
    };
    assert_eq!(sink.dropped(), 0, "ring must be large enough for the run");
    sink.sorted_events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial and parallel execution record the *same* event set on
    /// arbitrary topologies and payload mixes — the tentpole determinism
    /// guarantee, fault-free and under uniform BER injection.
    #[test]
    fn serial_and_parallel_traces_are_identical(
        nodes in 2usize..=3,
        raw in prop::collection::vec(raw_transfer(), 1..=6),
        ber_seed in any::<u64>(),
    ) {
        let (topo, transfers) = build_transfers(nodes, &raw);
        let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
        let Ok(plan) = compile_plan(&topo, &shapes) else { return Ok(()) };
        let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

        let serial = traced_run(&plan, &payloads, false, None);
        let parallel = traced_run(&plan, &payloads, true, None);
        prop_assert_eq!(&serial, &parallel);
        prop_assert!(!serial.is_empty(), "instrumented run records events");

        let faults = LinkFaultModel::uniform(1e-6, ber_seed);
        let serial_f = traced_run(&plan, &payloads, false, Some(&faults));
        let parallel_f = traced_run(&plan, &payloads, true, Some(&faults));
        prop_assert_eq!(serial_f, parallel_f);
    }

    /// A `NullSink` (and no sink at all) leaves the simulation output
    /// bit-identical to a `RingSink`-instrumented run: tracing observes,
    /// never perturbs.
    #[test]
    fn sinks_never_perturb_the_simulation(
        nodes in 2usize..=3,
        raw in prop::collection::vec(raw_transfer(), 1..=6),
    ) {
        let (topo, transfers) = build_transfers(nodes, &raw);
        let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
        let Ok(plan) = compile_plan(&topo, &shapes) else { return Ok(()) };
        let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

        let bare = PlanExecutor::new().execute(&plan, &payloads);
        let mut with_null = PlanExecutor::new();
        with_null.set_trace_sink(Arc::new(NullSink));
        prop_assert_eq!(&with_null.execute(&plan, &payloads), &bare);
        let mut with_ring = PlanExecutor::new();
        with_ring.set_trace_sink(Arc::new(RingSink::new(1 << 16)));
        prop_assert_eq!(&with_ring.execute(&plan, &payloads), &bare);
    }
}

/// Deterministic (non-proptest) pin of the same contract, so the suite
/// still exercises it under the offline proptest stub.
#[test]
fn fixed_workload_serial_parallel_trace_identity() {
    let raw: Vec<RawTransfer> = vec![
        (0, 9, 1, 2, 12, 0x5a),
        (7, 3, 0, 4, 7, 0x21),
        (14, 14, 3, 3, 20, 0xe7),
        (2, 0, 5, 1, 1, 0x80),
    ];
    let (topo, transfers) = build_transfers(2, &raw);
    let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
    let plan = compile_plan(&topo, &shapes).unwrap();
    let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

    let serial = traced_run(&plan, &payloads, false, None);
    let parallel = traced_run(&plan, &payloads, true, None);
    assert_eq!(serial, parallel);
    assert!(!serial.is_empty());

    // Per-chip spans cover every chip the plan touches (execution-order
    // agnostic: compare as sorted lane sets).
    let mut exec_lanes: Vec<u32> = serial
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ChipExec { .. }))
        .map(|e| e.lane)
        .collect();
    exec_lanes.sort_unstable();
    let mut chip_lanes: Vec<u32> = plan.chips.iter().map(|c| c.tsp.0).collect();
    chip_lanes.sort_unstable();
    assert_eq!(exec_lanes, chip_lanes);

    // And the same workload under BER injection.
    let faults = LinkFaultModel::uniform(2e-6, 41);
    let serial_f = traced_run(&plan, &payloads, false, Some(&faults));
    let parallel_f = traced_run(&plan, &payloads, true, Some(&faults));
    assert_eq!(serial_f, parallel_f);
}

/// Events come out of the ring already unique and totally ordered by the
/// `(cycle, lane, seq)` merge key.
#[test]
fn trace_keys_are_unique_and_ordered() {
    let raw: Vec<RawTransfer> = vec![(0, 9, 1, 2, 12, 0x5a), (7, 3, 0, 4, 7, 0x21)];
    let (topo, transfers) = build_transfers(1, &raw);
    let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
    let plan = compile_plan(&topo, &shapes).unwrap();
    let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

    let events = traced_run(&plan, &payloads, true, None);
    for pair in events.windows(2) {
        assert!(pair[0].key() < pair[1].key(), "strictly ascending keys");
    }
}

/// A `NullSink` run is bit-identical to an uninstrumented run on a fixed
/// workload (digest-level pin for the stubbed-proptest environment).
#[test]
fn fixed_workload_null_sink_is_invisible() {
    let raw: Vec<RawTransfer> = vec![(3, 11, 2, 6, 16, 0x33), (9, 1, 7, 0, 5, 0x4c)];
    let (topo, transfers) = build_transfers(2, &raw);
    let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
    let plan = compile_plan(&topo, &shapes).unwrap();
    let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

    let bare = PlanExecutor::new().execute(&plan, &payloads).unwrap();
    let mut with_null = PlanExecutor::new();
    with_null.set_trace_sink(Arc::new(NullSink));
    let nulled = with_null.execute(&plan, &payloads).unwrap();
    assert_eq!(nulled, bare);
    assert_eq!(nulled.dst_digests, bare.dst_digests);

    let mut with_ring = PlanExecutor::new();
    with_ring.set_trace_sink(Arc::new(RingSink::new(1 << 16)));
    assert_eq!(with_ring.execute(&plan, &payloads).unwrap(), bare);
}
