//! Worker-pool determinism contract: for ANY worker count — more workers
//! than chips, fewer workers than chips, odd widths, width changes on a
//! live executor — the parallel engine's report AND its trace event
//! stream are bit-identical to the serial engine's. The pool, the
//! compile-time shard partition, and the spine-side merge are the
//! tentpole of the parallel executor; these tests are its oracle.

#![allow(dead_code)]

use std::sync::Arc;
use tsm_core::cosim::{
    compile_plan, CompiledPlan, CosimTransfer, LinkFaultModel, PlanExecutor, TransferShape,
};
use tsm_isa::Vector;
use tsm_topology::{Topology, TspId};
use tsm_trace::{RingSink, TraceEvent};

use proptest::prelude::*;

type Payload = Arc<Vector>;

/// Raw generator output for one transfer: TSP picks are taken modulo the
/// topology size, `to` is offset past `from` so the endpoints differ.
type RawTransfer = (u32, u32, u8, u8, usize, u8);

fn raw_transfer() -> impl Strategy<Value = RawTransfer> {
    (0u32..24, 0u32..23, 0u8..8, 0u8..8, 1usize..=20, any::<u8>())
}

/// Materializes raw generator output against a concrete topology. SRAM
/// regions are spaced 32 offsets apart (> max vector count), so distinct
/// transfers never overlap in any chip's memory.
fn build_transfers(topo: &Topology, raw: &[RawTransfer]) -> Vec<CosimTransfer> {
    let tsps = topo.num_tsps() as u32;
    raw.iter()
        .enumerate()
        .map(|(idx, &(f, t, src_slice, dst_slice, vectors, seed))| {
            let from = f % tsps;
            let rest = t % (tsps - 1);
            let to = if rest >= from { rest + 1 } else { rest };
            CosimTransfer {
                from: TspId(from),
                to: TspId(to),
                src_slice,
                src_offset: (idx * 32) as u16,
                dst_slice,
                dst_offset: (idx * 32) as u16,
                data: (0..vectors)
                    .map(|v| {
                        Vector::from_fn(|b| (b as u8) ^ seed.wrapping_add((idx * 31 + v) as u8))
                    })
                    .collect(),
            }
        })
        .collect()
}

/// One traced run at an explicit worker count; returns the report result
/// and the canonical `(cycle, lane, seq)`-ordered event stream.
#[allow(clippy::type_complexity)]
fn traced_run_with_threads(
    plan: &CompiledPlan,
    payloads: &[Vec<Payload>],
    threads: Option<usize>,
    faults: Option<&LinkFaultModel>,
) -> (
    Result<tsm_core::cosim::CosimReport, tsm_core::cosim::CosimError>,
    Vec<TraceEvent>,
) {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut exec = PlanExecutor::new();
    exec.set_trace_sink(sink.clone());
    let report = match threads {
        // Serial entry point: the reference semantics.
        None => match faults {
            None => exec.execute_serial(plan, payloads),
            Some(f) => exec.execute_with_faults_serial(plan, payloads, f),
        },
        Some(t) => {
            exec.set_threads(t);
            match faults {
                None => exec.execute(plan, payloads),
                Some(f) => exec.execute_with_faults(plan, payloads, f),
            }
        }
    };
    assert_eq!(sink.dropped(), 0, "ring must be large enough for the run");
    (report, sink.sorted_events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized workloads × randomized worker counts (1, even, odd,
    /// far more than any level holds): report and trace equal the serial
    /// engine's bit for bit. Random multi-transfer workloads produce
    /// uneven hop-depth levels, so worker counts both above and below the
    /// level populations are continuously exercised.
    #[test]
    fn any_worker_count_matches_serial(
        nodes in 2usize..=3,
        raw in prop::collection::vec(raw_transfer(), 1..=6),
        threads in 1usize..=33,
    ) {
        let topo = Topology::fully_connected_nodes(nodes).expect("topology builds");
        let transfers = build_transfers(&topo, &raw);
        let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
        let Ok(plan) = compile_plan(&topo, &shapes) else { return Ok(()) };
        let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

        let (want, want_events) = traced_run_with_threads(&plan, &payloads, None, None);
        let (got, got_events) = traced_run_with_threads(&plan, &payloads, Some(threads), None);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(&got_events, &want_events);
        prop_assert!(!want_events.is_empty(), "instrumented run records events");
    }

    /// The same contract under datapath BER injection: corruption happens
    /// in the serial bind phase, so no worker count may perturb it.
    #[test]
    fn any_worker_count_matches_serial_under_faults(
        raw in prop::collection::vec(raw_transfer(), 1..=4),
        threads in 2usize..=9,
        ber_seed in any::<u64>(),
    ) {
        let topo = Topology::fully_connected_nodes(3).expect("topology builds");
        let transfers = build_transfers(&topo, &raw);
        let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
        let Ok(plan) = compile_plan(&topo, &shapes) else { return Ok(()) };
        let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();
        let faults = LinkFaultModel::uniform(1e-6, ber_seed);

        let (want, want_events) =
            traced_run_with_threads(&plan, &payloads, None, Some(&faults));
        let (got, got_events) =
            traced_run_with_threads(&plan, &payloads, Some(threads), Some(&faults));
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(got_events, want_events);
    }

    /// One executor re-used across changing worker counts (forcing pool
    /// rebuilds) and repeated runs stays bit-identical throughout.
    #[test]
    fn width_changes_on_a_live_executor_stay_identical(
        raw in prop::collection::vec(raw_transfer(), 1..=4),
        widths in prop::collection::vec(1usize..=12, 2..=4),
    ) {
        let topo = Topology::fully_connected_nodes(2).expect("topology builds");
        let transfers = build_transfers(&topo, &raw);
        let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
        let Ok(plan) = compile_plan(&topo, &shapes) else { return Ok(()) };
        let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

        let mut reference = PlanExecutor::new();
        let want = reference.execute_serial(&plan, &payloads);
        let mut exec = PlanExecutor::new();
        for w in widths {
            exec.set_threads(w);
            prop_assert_eq!(&exec.execute(&plan, &payloads), &want);
        }
    }
}

/// Deterministic pin of the extremes on a fixed workload: 1 worker, a few
/// odd widths, and a width far beyond the chip count all reproduce the
/// serial report and trace exactly. Runs a deep (multi-hop, uneven-level)
/// dragonfly so levels of very different populations are covered.
#[test]
fn fixed_workload_all_widths_identical() {
    let topo = Topology::rack_dragonfly(2).expect("topology builds");
    let raw: Vec<RawTransfer> = vec![
        (0, 140, 1, 2, 12, 0x5a),
        (77, 3, 0, 4, 7, 0x21),
        (139, 64, 3, 3, 20, 0xe7),
        (23, 23, 5, 1, 1, 0x80),
    ];
    let transfers = build_transfers(&topo, &raw);
    let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
    let plan = compile_plan(&topo, &shapes).unwrap();
    let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

    let (want, want_events) = traced_run_with_threads(&plan, &payloads, None, None);
    want.as_ref().expect("fixed workload executes");
    for threads in [1usize, 2, 3, 5, 8, 64, 1000] {
        let (got, got_events) = traced_run_with_threads(&plan, &payloads, Some(threads), None);
        assert_eq!(got, want, "report diverged at {threads} workers");
        assert_eq!(
            got_events, want_events,
            "trace diverged at {threads} workers"
        );
    }
}

/// Worker-count resolution precedence: explicit `set_threads` beats the
/// `TSM_THREADS` environment variable, which beats auto-detection;
/// malformed and zero env values fall through to auto. The only test in
/// this binary that touches the environment.
#[test]
fn thread_resolution_precedence() {
    let auto = {
        std::env::remove_var(tsm_core::cosim::exec::TSM_THREADS_ENV);
        PlanExecutor::new().resolved_threads()
    };
    assert!(auto >= 1);

    std::env::set_var(tsm_core::cosim::exec::TSM_THREADS_ENV, "7");
    let mut exec = PlanExecutor::new();
    assert_eq!(exec.resolved_threads(), 7);
    exec.set_threads(3);
    assert_eq!(exec.resolved_threads(), 3);
    exec.set_threads(0); // clamped
    assert_eq!(exec.resolved_threads(), 1);
    exec.set_threads_auto();
    assert_eq!(exec.resolved_threads(), 7);

    for bad in ["0", "-4", "lots", ""] {
        std::env::set_var(tsm_core::cosim::exec::TSM_THREADS_ENV, bad);
        assert_eq!(
            exec.resolved_threads(),
            auto,
            "env value {bad:?} must fall back to auto"
        );
    }
    std::env::remove_var(tsm_core::cosim::exec::TSM_THREADS_ENV);
    assert_eq!(exec.resolved_threads(), auto);
}

/// The pool actually executes on its workers: a 2-worker run on a
/// many-chip level completes (the shard partition covers every chip) and
/// the executor can be dropped and rebuilt without hanging.
#[test]
fn pool_lifecycle_smoke() {
    let topo = Topology::fully_connected_nodes(3).expect("topology builds");
    let raw: Vec<RawTransfer> = (0..6)
        .map(|i| {
            (
                i * 5,
                i * 3 + 1,
                (i % 8) as u8,
                ((i + 2) % 8) as u8,
                4,
                i as u8,
            )
        })
        .collect();
    let transfers = build_transfers(&topo, &raw);
    let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
    let plan = compile_plan(&topo, &shapes).unwrap();
    let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

    for _ in 0..3 {
        let mut exec = PlanExecutor::new();
        exec.set_threads(2);
        let a = exec.execute(&plan, &payloads).unwrap();
        let b = exec.execute(&plan, &payloads).unwrap();
        assert_eq!(a, b, "warm re-execution is bit-identical");
        drop(exec); // joins the pool; must not hang
    }
}
