//! Causal latency attribution, machine-checked end to end:
//!
//! - **Sums-to-total**: every served request of a serve run — clean,
//!   faulty/replaying, or certified — carries a `LatencyBreakdown` whose
//!   stage components sum *exactly* to its measured enqueue→complete
//!   latency, with zero gaps and zero overlaps.
//! - **Off-identity**: with attribution disabled, the serve report,
//!   the event sequence, and every batch outcome are bit-identical to a
//!   build without the feature — the only difference an enabled run may
//!   introduce is the `attribution` field itself.
//! - **Aggregation**: the report's per-stage histograms and
//!   per-tenant/per-stage counters are exactly the fold of the
//!   individual breakdowns.
//! - **Reproducibility**: same seed, same breakdowns, byte-identical
//!   JSON, lossless round trip.

use std::sync::Arc;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::runtime::{ExecMode, Runtime, SparePolicy};
use tsm_core::serving::{Request, RequestOutcome, ServeConfig, ServeReport, Server};
use tsm_core::system::System;
use tsm_topology::{LinkId, NodeId, TspId};
use tsm_trace::{LatencyBreakdown, RingSink, Stage, TraceEvent};

/// The multi-hop pipeline from the identity suite: compute, a cross-node
/// transfer, dependent compute.
fn pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes: 32_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn runtime() -> Runtime {
    Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath)
}

/// Marks every cable into `victim` marginal at a BER where replays (and
/// occasionally failovers) actually fire.
fn make_marginal(rt: &mut Runtime, victim: NodeId) {
    rt.set_ber(0.0, 2e-5);
    let bad: Vec<LinkId> = rt
        .system()
        .topology()
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
        .map(|(i, _)| LinkId(i as u32))
        .collect();
    for l in bad {
        rt.degrade_link(l);
    }
}

/// Two tenants, several requests inside one batch window plus
/// stragglers — batching, window waits, and queue waits all occur.
fn offered_mixed() -> Vec<Request> {
    let mut offered = Vec::new();
    for i in 0..4u64 {
        offered.push(Request {
            at: i * 200,
            tenant: 0,
            model: 0,
            priority: 1,
            deadline_slack: 10_000_000,
        });
        offered.push(Request {
            at: i * 200 + 50,
            tenant: 1,
            model: 0,
            priority: 1,
            deadline_slack: 10_000_000,
        });
    }
    offered
}

fn serve_with(
    attribution: bool,
    certify: bool,
    marginal: bool,
    seed: u64,
) -> (ServeReport, Vec<TraceEvent>) {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = runtime().with_trace_sink(sink.clone());
    if marginal {
        make_marginal(&mut rt, NodeId(1));
    }
    let cfg = ServeConfig {
        batch_window: 500,
        max_batch: 4,
        seed,
        certify,
        attribution,
        ..ServeConfig::default()
    };
    let mut server = Server::new(rt, cfg);
    server.add_model(|batch| {
        let mut g = pipeline();
        g.add(
            TspId(0),
            OpKind::Compute {
                cycles: 1_000 * batch as u64,
            },
            vec![],
        )
        .unwrap();
        g
    });
    let report = server.serve(&offered_mixed()).unwrap();
    assert_eq!(sink.dropped(), 0);
    (report, sink.sorted_events())
}

/// Every breakdown must agree with its request's `Served` outcome and
/// satisfy the sum identity explicitly (the serve run already verified
/// it; this re-derives it from the public accessors).
fn assert_breakdowns_exact(report: &ServeReport) {
    let attr = report.attribution.as_ref().expect("attribution is on");
    assert_eq!(
        attr.len() as u64,
        report.served,
        "one breakdown per served request"
    );
    for b in &attr.breakdowns {
        let outcome = report.outcomes[b.request as usize];
        let RequestOutcome::Served {
            batch,
            completion,
            latency,
        } = outcome
        else {
            panic!("breakdown for a non-served request {}", b.request);
        };
        assert_eq!(b.batch, batch);
        assert_eq!(b.completion, completion);
        assert_eq!(b.latency(), latency, "end-to-end latency agrees");
        let sum: u64 = Stage::ALL.iter().map(|&s| b.component(s)).sum();
        assert_eq!(sum, b.latency(), "components sum exactly — no gap/overlap");
        assert!(b.verify().is_ok());
    }
}

#[test]
fn attribution_off_is_bit_identical_and_on_only_adds_the_field() {
    let (off, ev_off) = serve_with(false, false, false, 42);
    let (on, ev_on) = serve_with(true, false, false, 42);
    assert!(off.attribution.is_none(), "disabled runs carry no field");
    assert!(on.attribution.is_some());
    assert_eq!(ev_on, ev_off, "attribution must not perturb the trace");
    let mut stripped = on.clone();
    stripped.attribution = None;
    assert_eq!(
        stripped, off,
        "report differs only in the attribution field"
    );
}

#[test]
fn every_served_request_sums_exactly_on_the_clean_path() {
    let (report, _) = serve_with(true, false, false, 42);
    assert!(report.served > 0);
    assert_breakdowns_exact(&report);
    let attr = report.attribution.as_ref().unwrap();
    // The clean path replays nothing; batched requests paid window
    // and/or queue wait; every launch drains one epoch gap per attempt.
    for b in &attr.breakdowns {
        assert_eq!(b.component(Stage::Replay), 0, "clean launches never replay");
        assert!(b.component(Stage::Execute) > 0);
        assert!(b.component(Stage::Drain) > 0);
    }
    assert!(
        attr.breakdowns
            .iter()
            .any(|b| b.component(Stage::WindowWait) > 0),
        "the 500-cycle batch window is visible as window wait"
    );
}

#[test]
fn faulty_serves_attribute_replay_cycles_and_still_sum_exactly() {
    // Find a seed whose marginal-fabric run actually replays.
    let report = (0..64u64)
        .find_map(|seed| {
            let (report, _) = serve_with(true, false, true, seed);
            report
                .batches
                .iter()
                .any(|b| b.outcome.replays() > 0)
                .then_some(report)
        })
        .expect("some seed in 0..64 replays on the marginal fabric");
    assert_breakdowns_exact(&report);
    let attr = report.attribution.as_ref().unwrap();
    let replayed: Vec<&LatencyBreakdown> = attr
        .breakdowns
        .iter()
        .filter(|b| b.component(Stage::Replay) > 0)
        .collect();
    assert!(
        !replayed.is_empty(),
        "replaying batches surface replay cycles in their requests"
    );
    for b in replayed {
        let outcome = &report.batches[b.batch as usize].outcome;
        assert!(outcome.attempts() > 1);
        // Drain scales with attempts: one epoch gap per attempt.
        assert_eq!(b.component(Stage::Drain) % u64::from(outcome.attempts()), 0);
    }
}

#[test]
fn certified_serves_attribute_and_record_compile_reuse() {
    let (report, _) = serve_with(true, true, false, 42);
    assert_breakdowns_exact(&report);
    let attr = report.attribution.as_ref().unwrap();
    // The first batch compiles; later batches of the same model shape
    // reuse. Compile-vs-reuse is zero-width on the virtual timeline, so
    // it is recorded as counts, not cycles.
    assert!(attr.breakdowns.iter().any(|b| b.compiles > 0));
    assert!(attr.breakdowns.iter().any(|b| b.reuses > 0));
    for b in &attr.breakdowns {
        assert!(report.batches[b.batch as usize].certified == Some(true));
    }
}

#[test]
fn aggregation_is_exactly_the_fold_of_the_breakdowns() {
    let (report, _) = serve_with(true, false, false, 42);
    let attr = report.attribution.as_ref().unwrap();
    let m = &attr.metrics;
    for stage in Stage::ALL {
        // Global histogram: one observation per request.
        let h = m
            .histogram(stage.histogram_metric())
            .expect("every stage histogram exists");
        assert_eq!(h.count, report.served);
        // Per-tenant totals: the exact component sums.
        for ten in &report.tenants {
            let want: u64 = attr
                .breakdowns
                .iter()
                .filter(|b| b.tenant == ten.tenant)
                .map(|b| b.component(stage))
                .sum();
            assert_eq!(
                m.counter_labeled(stage.total_metric(), ten.tenant),
                want,
                "tenant {} {} cycles",
                ten.tenant,
                stage.as_str()
            );
        }
    }
    // Critical verdicts partition the served requests.
    let critical_total: u64 = Stage::ALL
        .iter()
        .map(|&s| m.counter(s.critical_metric()))
        .sum();
    assert_eq!(critical_total, report.served);
    for stage in Stage::ALL {
        let want = attr
            .breakdowns
            .iter()
            .filter(|b| b.critical_stage() == stage)
            .count() as u64;
        assert_eq!(attr.critical_count(stage), want);
        assert_eq!(m.counter(stage.critical_metric()), want);
    }
}

#[test]
fn attribution_is_bit_reproducible_through_json() {
    let (a, _) = serve_with(true, false, false, 42);
    let (b, _) = serve_with(true, false, false, 42);
    assert_eq!(a, b, "same seed, same report");
    let attr = a.attribution.as_ref().unwrap();
    for (x, y) in attr
        .breakdowns
        .iter()
        .zip(&b.attribution.as_ref().unwrap().breakdowns)
    {
        assert_eq!(x.to_json(), y.to_json(), "byte-identical breakdown JSON");
        let round = LatencyBreakdown::from_json(&x.to_json()).unwrap();
        assert_eq!(round, *x, "JSON round trip is lossless");
    }
}
