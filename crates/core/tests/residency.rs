//! The plan-residency layer, exercised through the public `Runtime`
//! API: multi-model alternation reuses instead of recompiling, budgets
//! evict deterministically (proptest vs a reference model), the warm
//! tier round-trips plans across runtimes bit-for-bit, failovers drop
//! stale epochs, and — the regression the bugfix must not cause —
//! single-model launch sequences remain bit- and trace-identical to the
//! pre-residency runtime.

use proptest::prelude::*;
use std::sync::Arc;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::graph_fingerprint;
use tsm_core::runtime::{ExecMode, Runtime, SparePolicy};
use tsm_core::system::System;
use tsm_topology::{LinkId, NodeId, TspId};
use tsm_trace::{EventKind, RingSink, RUNTIME_LANE};

/// A compute-only model; distinct `cycles` gives distinct fingerprints.
fn compute_model(cycles: u64) -> Graph {
    let mut g = Graph::new();
    g.add(TspId(0), OpKind::Compute { cycles }, vec![]).unwrap();
    g
}

/// The conformance suite's multi-hop pipeline, parameterized so two
/// models produce different datapath plans.
fn pipeline(bytes: u64) -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn runtime(mode: ExecMode) -> Runtime {
    Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem).with_exec_mode(mode)
}

/// The tentpole fix: alternating two models no longer recompiles on
/// every dispatch, and a warm relaunch after an interleaved foreign
/// model is bit-identical to a warm relaunch without one.
#[test]
fn multi_model_alternation_reuses_instead_of_recompiling() {
    let a = pipeline(32_000);
    let b = pipeline(64_000);

    // Interleaved: A, B, A.
    let mut rt = runtime(ExecMode::Datapath);
    rt.launch(&a, 1).unwrap();
    rt.launch(&b, 2).unwrap();
    let third = rt.launch(&a, 3).unwrap();
    assert_eq!(
        (third.compiles(), third.reuses()),
        (0, 1),
        "the old single-entry cache recompiled here"
    );
    let stats = rt.residency().stats();
    assert_eq!((stats.hits, stats.misses), (1, 2));
    assert_eq!(stats.resident_plans, 2);

    // Back-to-back: A, A — the warm launch must be bit-identical to the
    // interleaved one (same seed, same resident plan).
    let mut rt2 = runtime(ExecMode::Datapath);
    rt2.launch(&a, 1).unwrap();
    let second = rt2.launch(&a, 3).unwrap();
    assert_eq!(third, second, "interleaving B must not perturb A's launch");
    assert_eq!(third.dst_digests, second.dst_digests);
}

/// Budget 0 emulates the pre-residency single-entry cache: only the
/// most recently used plan stays resident, so alternation thrashes.
#[test]
fn budget_zero_matches_the_old_single_entry_cache() {
    let a = compute_model(5_000);
    let b = compute_model(6_000);
    let mut rt = runtime(ExecMode::Statistical).with_plan_budget(0);
    rt.launch(&a, 1).unwrap();
    rt.launch(&b, 2).unwrap();
    let third = rt.launch(&a, 3).unwrap();
    assert_eq!(
        (third.compiles(), third.reuses()),
        (1, 0),
        "budget 0 must thrash exactly like the old cache"
    );
    let stats = rt.residency().stats();
    assert_eq!(stats.resident_plans, 1);
    assert_eq!(stats.evictions, 2);
}

/// Single-model regression: the launch event sequence on the runtime
/// lane is exactly the pre-residency sequence (pinned literally), and
/// repeated launches stay bit-reproducible.
#[test]
fn single_model_launches_keep_the_pre_residency_trace_shape() {
    let g = pipeline(32_000);
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = runtime(ExecMode::Datapath).with_trace_sink(sink.clone());
    let cold = rt.launch(&g, 7).unwrap();
    let cold_kinds: Vec<EventKind> = sink
        .sorted_events()
        .iter()
        .filter(|e| e.lane == RUNTIME_LANE)
        .map(|e| e.kind)
        .collect();
    assert_eq!(
        cold_kinds,
        vec![
            EventKind::LaunchBegin {
                graph_fp: graph_fingerprint(&g)
            },
            EventKind::Align,
            EventKind::Compile { epoch: 0 },
            EventKind::ReplayEpoch { attempt: 0 },
            EventKind::LaunchEnd { attempts: 1 },
        ]
    );

    let sink2 = Arc::new(RingSink::new(1 << 16));
    rt.set_trace_sink(sink2.clone());
    let warm = rt.launch(&g, 7).unwrap();
    let warm_kinds: Vec<EventKind> = sink2
        .sorted_events()
        .iter()
        .filter(|e| e.lane == RUNTIME_LANE)
        .map(|e| e.kind)
        .collect();
    assert_eq!(
        warm_kinds,
        vec![
            EventKind::LaunchBegin {
                graph_fp: graph_fingerprint(&g)
            },
            EventKind::Align,
            EventKind::Reuse { epoch: 0 },
            EventKind::ReplayEpoch { attempt: 0 },
            EventKind::LaunchEnd { attempts: 1 },
        ]
    );

    // Same seed, warm vs cold: identical outcome except compile/reuse
    // accounting — in particular identical destination-SRAM digests.
    assert_eq!(cold.dst_digests, warm.dst_digests);
    assert_eq!(cold.timeline_cycles, warm.timeline_cycles);
    assert_eq!((warm.compiles(), warm.reuses()), (0, 1));
}

/// A failover bumps the mapping epoch and drops every stale resident
/// plan — nothing keyed to the dead mapping survives.
#[test]
fn failover_drops_stale_epochs_from_residency() {
    let g = pipeline(32_000);
    let mut rt = runtime(ExecMode::Datapath);
    rt.set_ber(0.0, 1e-3);
    let bad: Vec<LinkId> = rt
        .system()
        .topology()
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.a.node() == NodeId(1) || l.b.node() == NodeId(1))
        .map(|(i, _)| LinkId(i as u32))
        .collect();
    for l in bad {
        rt.degrade_link(l);
    }
    let out = (0..64u64)
        .find_map(|seed| {
            let out = rt.launch(&g, seed).unwrap();
            (!out.failovers.is_empty()).then_some(out)
        })
        .expect("some seed in 0..64 fails over on this marginal fabric");
    assert!(rt.mapping_epoch() >= 1);
    assert_eq!(out.failovers.len() as u64, rt.mapping_epoch());
    let stats = rt.residency().stats();
    assert!(stats.stale_drops >= 1, "the epoch-0 plan must be dropped");
    for info in rt.residency().resident() {
        assert_eq!(info.epoch, rt.mapping_epoch(), "no stale epochs remain");
    }
}

/// Warm tier round trip: export from one runtime, import into a fresh
/// one, and the warm-started launch is bit-identical to a cold compile —
/// plan adoption changes only *when* the plan was built, not what runs.
#[test]
fn warm_tier_round_trips_plans_across_runtimes() {
    let g = pipeline(32_000);

    let mut rt1 = runtime(ExecMode::Datapath);
    let cold = rt1.launch(&g, 7).unwrap();
    let exported = rt1.residency().export_warm();

    let mut rt2 = runtime(ExecMode::Datapath);
    assert_eq!(rt2.residency_mut().import_warm(&exported), Ok(1));
    assert_eq!(rt2.residency().warm_len(), 1);
    let warmed = rt2.launch(&g, 7).unwrap();

    // Still a compile (the program is rebuilt) but the datapath plan was
    // adopted from the tier, and the launch is bit-identical.
    assert_eq!((warmed.compiles(), warmed.reuses()), (1, 0));
    assert_eq!(rt2.residency().stats().warm_starts, 1);
    assert_eq!(
        rt2.residency().warm_len(),
        0,
        "adopted plans leave the tier"
    );
    assert_eq!(warmed, cold, "warm start must not perturb the launch");
    assert_eq!(warmed.dst_digests, cold.dst_digests);

    // The resident plan survived the JSON round trip exactly: exporting
    // again reproduces the same document.
    assert_eq!(rt2.residency().export_warm(), exported);

    // A fingerprint mismatch never adopts: a different model compiles
    // fresh and leaves the tier alone.
    let mut rt3 = runtime(ExecMode::Datapath);
    rt3.residency_mut().import_warm(&exported).unwrap();
    rt3.launch(&pipeline(64_000), 7).unwrap();
    assert_eq!(rt3.residency().stats().warm_starts, 0);
    assert_eq!(rt3.residency().warm_len(), 1);
}

/// Reference model for the through-the-runtime proptest: entry-count
/// LRU (every statistical compute-model entry costs the same estimated
/// bytes).
#[derive(Default)]
struct ModelLru {
    entries: Vec<(u64, u64)>, // (fingerprint, last_used)
    seq: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelLru {
    /// Returns whether the launch hit.
    fn launch(&mut self, fp: u64) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == fp) {
            e.1 = self.seq;
            self.seq += 1;
            self.hits += 1;
            return true;
        }
        self.seq += 1; // the miss's touch consumes a sequence number
        self.misses += 1;
        self.entries.push((fp, self.seq));
        self.seq += 1;
        while self.entries.len() > self.capacity.max(1) {
            let victim = self
                .entries
                .iter()
                .map(|e| e.1)
                .min()
                .expect("nonempty while over capacity");
            self.entries.retain(|e| e.1 != victim);
            self.evictions += 1;
        }
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Arbitrary launch sequences over G models under an arbitrary
    /// entry-count budget: the resident set, the hit/miss stream, and
    /// the eviction count all match an obviously-correct flat-scan LRU.
    /// Two identical runs also match each other, pinning eviction order
    /// as HashMap-iteration-independent.
    #[test]
    fn runtime_residency_matches_reference_lru(
        capacity in 1usize..5,
        launches in proptest::collection::vec(0usize..4, 1..24)
    ) {
        let models: Vec<Graph> =
            (0..4).map(|i| compute_model(1_000 + 500 * i as u64)).collect();
        let fps: Vec<u64> = models.iter().map(graph_fingerprint).collect();

        // Learn the (uniform) per-entry byte estimate from a probe run.
        let mut probe = runtime(ExecMode::Statistical);
        probe.launch(&models[0], 0).unwrap();
        let unit = probe.residency().resident()[0].bytes;

        let mut rt = runtime(ExecMode::Statistical)
            .with_plan_budget(unit * capacity as u64);
        let mut model = ModelLru { capacity, ..ModelLru::default() };
        for (i, &m) in launches.iter().enumerate() {
            let out = rt.launch(&models[m], i as u64).unwrap();
            prop_assert_eq!(out.compiles() + out.reuses(), 1);
            // Hit/miss agrees at every step, not just in the totals.
            prop_assert_eq!(out.reuses() == 1, model.launch(fps[m]));

            let stats = rt.residency().stats();
            prop_assert_eq!(
                (stats.hits, stats.misses, stats.evictions),
                (model.hits, model.misses, model.evictions)
            );
            let mut want: Vec<u64> = model.entries.iter().map(|e| e.0).collect();
            want.sort_unstable();
            let got: Vec<u64> = rt
                .residency()
                .resident()
                .iter()
                .map(|r| r.graph_fp)
                .collect();
            prop_assert_eq!(got, want, "resident sets diverged at step {}", i);
        }

        // Replay the identical sequence: bit-identical residency history.
        let mut rt2 = runtime(ExecMode::Statistical)
            .with_plan_budget(unit * capacity as u64);
        for (i, &m) in launches.iter().enumerate() {
            rt2.launch(&models[m], i as u64).unwrap();
        }
        prop_assert_eq!(rt2.residency().stats(), rt.residency().stats());
        prop_assert_eq!(rt2.residency().resident(), rt.residency().resident());
    }
}
