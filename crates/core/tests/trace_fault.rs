//! Fault-path trace assertions: one faulty launch renders as a complete,
//! self-consistent timeline — replay epochs, exactly one blame vote and
//! one failover for the marginal node, and link-level FEC events with the
//! exact (link) coordinates of the injected corruption.

use std::sync::Arc;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::cosim::{compile_plan, LinkFaultModel, PlanExecutor, TargetedFlip, TransferShape};
use tsm_core::runtime::{Runtime, SparePolicy};
use tsm_core::system::System;
use tsm_isa::Vector;
use tsm_topology::{LinkId, NodeId, Topology, TspId};
use tsm_trace::{chrome_trace_json, EventKind, RingSink, RUNTIME_LANE};

/// A logical pipeline spanning the first two logical nodes.
fn logical_pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(8),
                bytes: 640_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(8), OpKind::Compute { cycles: 10_000 }, vec![t])
        .unwrap();
    g
}

/// A runtime whose cables into `victim` are all marginal: the launch must
/// replay, blame the node, and fail over to the spare.
fn marginal_runtime(victim: NodeId) -> Runtime {
    let mut rt = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem);
    let bad: Vec<LinkId> = rt
        .system()
        .topology()
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
        .map(|(i, _)| LinkId(i as u32))
        .collect();
    for l in bad {
        rt.degrade_link(l);
    }
    rt
}

fn count(events: &[tsm_trace::TraceEvent], pred: impl Fn(&EventKind) -> bool) -> usize {
    events.iter().filter(|e| pred(&e.kind)).count()
}

#[test]
fn faulty_launch_traces_one_blame_one_failover_and_every_epoch() {
    let victim = NodeId(1);
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = marginal_runtime(victim).with_trace_sink(sink.clone());
    let out = rt.launch(&logical_pipeline(), 2).unwrap();
    assert_eq!(out.failovers, vec![victim], "scenario must fail over");
    assert!(out.attempts() > 1, "scenario must replay first");

    let events = sink.sorted_events();
    assert_eq!(sink.dropped(), 0);

    // Exactly one blame vote and one failover, naming the victim, with the
    // failover carrying the post-swap mapping epoch.
    let blames: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::BlameVote { node, votes } => Some((node, votes)),
            _ => None,
        })
        .collect();
    assert_eq!(blames.len(), 1);
    assert_eq!(blames[0].0, victim.0);
    assert!(blames[0].1 > 0, "the vote had endpoint evidence");
    let failovers: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Failover { node, epoch } => Some((node, epoch)),
            _ => None,
        })
        .collect();
    assert_eq!(failovers, vec![(victim.0, rt.mapping_epoch())]);

    // One replay-epoch span per attempt, numbered densely from zero.
    let epochs: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::ReplayEpoch { attempt } => Some(attempt),
            _ => None,
        })
        .collect();
    assert_eq!(epochs.len(), out.attempts() as usize);
    assert_eq!(epochs, (0..out.attempts()).collect::<Vec<_>>());

    // The launch frame: one begin, one end agreeing with the outcome, and
    // the alignment window when the outcome billed one.
    assert_eq!(
        count(&events, |k| matches!(k, EventKind::LaunchBegin { .. })),
        1
    );
    let ends: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LaunchEnd { attempts } => Some(attempts),
            _ => None,
        })
        .collect();
    assert_eq!(ends, vec![out.attempts()]);
    assert_eq!(
        count(&events, |k| matches!(k, EventKind::Align)),
        (out.alignment_cycles > 0) as usize
    );

    // Orchestration events all live on the runtime lane, and replay epochs
    // occupy disjoint, ascending cycle windows.
    let runtime_events: Vec<_> = events.iter().filter(|e| e.lane == RUNTIME_LANE).collect();
    assert!(runtime_events.len() >= events.len().min(4));
    let mut last_end = 0u64;
    for e in events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ReplayEpoch { .. }))
    {
        assert!(e.cycle >= last_end, "epochs overlap on the timeline");
        last_end = e.cycle + e.dur;
    }

    // The whole thing exports as a non-trivial Chrome trace.
    let json = chrome_trace_json(&events);
    assert!(json.contains("\"runtime.failover\""));
    assert!(json.contains("\"runtime.replay_epoch\""));
}

#[test]
fn clean_launch_traces_no_blame_and_a_single_epoch() {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_trace_sink(sink.clone());
    let out = rt.launch(&logical_pipeline(), 1).unwrap();
    assert_eq!(out.attempts(), 1);

    let events = sink.sorted_events();
    assert_eq!(
        count(&events, |k| matches!(k, EventKind::BlameVote { .. })),
        0
    );
    assert_eq!(
        count(&events, |k| matches!(k, EventKind::Failover { .. })),
        0
    );
    assert_eq!(
        count(&events, |k| matches!(k, EventKind::ReplayEpoch { .. })),
        1
    );
    assert_eq!(
        count(&events, |k| matches!(k, EventKind::Compile { .. })),
        1
    );
    assert_eq!(count(&events, |k| matches!(k, EventKind::Reuse { .. })), 0);

    // Relaunching the cached graph traces a reuse instead of a compile.
    let sink2 = Arc::new(RingSink::new(1 << 16));
    rt.set_trace_sink(sink2.clone());
    rt.launch(&logical_pipeline(), 3).unwrap();
    let events2 = sink2.sorted_events();
    assert_eq!(
        count(&events2, |k| matches!(k, EventKind::Compile { .. })),
        0
    );
    assert_eq!(count(&events2, |k| matches!(k, EventKind::Reuse { .. })), 1);
}

/// Targeted corruption surfaces as link-level FEC events with the exact
/// link coordinate: a single flip traces `LinkCorrected` on the struck
/// link; a double flip traces `LinkUncorrectable` there.
#[test]
fn targeted_flips_trace_the_struck_link() {
    let topo = Topology::fully_connected_nodes(2).unwrap();
    let from = TspId(0);
    let to = topo
        .tsps()
        .find(|&t| t.node() != from.node() && topo.links_between(from, t).is_empty())
        .expect("some non-adjacent cross-node TSP");
    let shapes = [TransferShape {
        from,
        to,
        src_slice: 0,
        src_offset: 0,
        dst_slice: 1,
        dst_offset: 0,
        vectors: 4,
    }];
    let plan = compile_plan(&topo, &shapes).unwrap();
    let payloads = vec![(0..4u32)
        .map(|v| Arc::new(Vector::from_fn(|b| (b as u8) ^ v as u8)))
        .collect::<Vec<_>>()];
    let (transfer, vector, link) = plan
        .chips
        .iter()
        .flat_map(|c| c.deliveries.iter())
        .map(|d| (d.vec.transfer, d.vec.vector, d.link))
        .next()
        .expect("the route has at least one hop");

    let sink = Arc::new(RingSink::new(1 << 14));
    let mut exec = PlanExecutor::new();
    exec.set_trace_sink(sink.clone());

    let single = LinkFaultModel::targeted_only(vec![TargetedFlip {
        transfer,
        vector,
        link,
        bits: vec![997],
    }]);
    exec.execute_with_faults(&plan, &payloads, &single).unwrap();
    let corrected: Vec<_> = sink
        .sorted_events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LinkCorrected { link, bit } => Some((link, bit)),
            _ => None,
        })
        .collect();
    assert_eq!(corrected, vec![(link.0, 997)]);

    sink.clear();
    let double = LinkFaultModel::targeted_only(vec![TargetedFlip {
        transfer,
        vector,
        link,
        bits: vec![3, 1200],
    }]);
    exec.execute_with_faults(&plan, &payloads, &double)
        .unwrap_err();
    let uncorrectable: Vec<_> = sink
        .sorted_events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LinkUncorrectable { link } => Some(link),
            _ => None,
        })
        .collect();
    assert_eq!(uncorrectable, vec![link.0]);
}
