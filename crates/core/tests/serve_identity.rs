//! The launch-vs-serve identity, machine-checked: `Runtime::launch`
//! through the staged engine is bit- and trace-identical to serving one
//! request through the frontend — same `LaunchOutcome`, same SRAM
//! digests, same event sequence once the `SERVING_LANE` bookkeeping is
//! filtered out. Holds on the fault-free path in both exec modes AND on
//! the faulty/replay path, which is what makes the serving layer a pure
//! wrapper rather than a second execution semantics.

use std::sync::Arc;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::runtime::{ExecMode, LaunchOutcome, Runtime, SparePolicy};
use tsm_core::serving::{BatchRecord, Request, ServeConfig, Server};
use tsm_core::system::System;
use tsm_topology::{LinkId, NodeId, TspId};
use tsm_trace::{RingSink, TraceEvent, SERVING_LANE};

/// The multi-hop pipeline from the conformance suite: compute, a
/// cross-node transfer, dependent compute — so datapath launches carry
/// destination-SRAM digests.
fn pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes: 32_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn runtime(mode: ExecMode) -> Runtime {
    Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem).with_exec_mode(mode)
}

/// Marks every cable into `victim` marginal at a BER where replays (and
/// occasionally failovers) actually fire.
fn make_marginal(rt: &mut Runtime, victim: NodeId) {
    rt.set_ber(0.0, 2e-5);
    let bad: Vec<LinkId> = rt
        .system()
        .topology()
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
        .map(|(i, _)| LinkId(i as u32))
        .collect();
    for l in bad {
        rt.degrade_link(l);
    }
}

/// Serves exactly one request (batch window 0, certify off, so the
/// launch runs at base 0 on the shared sink) and returns the batch
/// record plus the non-serving trace events.
fn serve_one(mode: ExecMode, cfg_seed: u64, marginal: bool) -> (BatchRecord, Vec<TraceEvent>) {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = runtime(mode).with_trace_sink(sink.clone());
    if marginal {
        make_marginal(&mut rt, NodeId(1));
    }
    let cfg = ServeConfig {
        seed: cfg_seed,
        batch_window: 0,
        ..ServeConfig::default()
    };
    let mut server = Server::new(rt, cfg);
    let model = server.add_model(|batch| {
        assert_eq!(batch, 1, "a lone request batches alone");
        pipeline()
    });
    let report = server
        .serve(&[Request {
            at: 0,
            tenant: 0,
            model,
            priority: 0,
            deadline_slack: 1_000_000,
        }])
        .unwrap();
    assert_eq!((report.served, report.shed), (1, 0));
    assert_eq!(report.batches.len(), 1);
    assert_eq!(sink.dropped(), 0, "identity needs a lossless trace");
    let events = sink
        .sorted_events()
        .into_iter()
        .filter(|e| e.lane != SERVING_LANE)
        .collect();
    (report.batches[0].clone(), events)
}

/// The same launch, standalone, with the seed the serving frontend
/// recorded for the batch.
fn launch_standalone(
    mode: ExecMode,
    seed: u64,
    marginal: bool,
) -> (LaunchOutcome, Vec<TraceEvent>) {
    let sink = Arc::new(RingSink::new(1 << 16));
    let mut rt = runtime(mode).with_trace_sink(sink.clone());
    if marginal {
        make_marginal(&mut rt, NodeId(1));
    }
    let out = rt.launch(&pipeline(), seed).unwrap();
    assert_eq!(sink.dropped(), 0);
    (out, sink.sorted_events())
}

/// Asserts the full identity triplet for one `(mode, cfg_seed, marginal)`
/// point and returns the outcome for further inspection.
fn assert_identity(mode: ExecMode, cfg_seed: u64, marginal: bool) -> LaunchOutcome {
    let (batch, serve_events) = serve_one(mode, cfg_seed, marginal);
    let (out, launch_events) = launch_standalone(mode, batch.seed, marginal);

    // Same LaunchOutcome, field for field (metrics, failovers, alignment,
    // span, digests, timeline width)...
    assert_eq!(batch.outcome, out, "LaunchOutcome must be bit-identical");
    // ...same SRAM digests, called out explicitly...
    assert_eq!(batch.outcome.dst_digests, out.dst_digests);
    // ...and the same event sequence, event for event.
    assert!(!launch_events.is_empty(), "launches trace");
    assert_eq!(
        serve_events, launch_events,
        "serve-of-one trace (minus SERVING_LANE) must equal the launch trace"
    );
    // The serving bookkeeping agrees with the launch it wrapped.
    assert_eq!(batch.attempts, out.attempts());
    assert_eq!(batch.completion - batch.dispatch, out.timeline_cycles);
    out
}

#[test]
fn serve_of_one_is_bit_identical_to_launch_statistical() {
    let out = assert_identity(ExecMode::Statistical, 7, false);
    assert_eq!(out.attempts(), 1, "fault-free point");
    assert!(
        out.dst_digests.is_empty(),
        "statistical mode has no datapath"
    );
}

#[test]
fn serve_of_one_is_bit_identical_to_launch_datapath() {
    let out = assert_identity(ExecMode::Datapath, 7, false);
    assert_eq!(out.attempts(), 1, "fault-free point");
    assert!(
        !out.dst_digests.is_empty(),
        "datapath launches fingerprint every destination SRAM"
    );
}

/// The identity must survive the recovery machinery: find a serving seed
/// whose launch replays (uncorrectable fault, software replay, possibly a
/// failover) and check the standalone launch walks the exact same path.
#[test]
fn serve_of_one_matches_launch_on_the_replay_path() {
    let out = (0..64u64)
        .find_map(|cfg_seed| {
            let (batch, _) = serve_one(ExecMode::Datapath, cfg_seed, true);
            (batch.outcome.replays() > 0)
                .then(|| assert_identity(ExecMode::Datapath, cfg_seed, true))
        })
        .expect("some seed in 0..64 replays on the marginal fabric");
    assert!(out.attempts() >= 2, "a replay means at least two attempts");
    assert!(!out.dst_digests.is_empty());
}
