//! Compile-once / execute-many contract tests: a [`CompiledPlan`] bound to
//! payloads via [`PlanExecutor`] must be bit-identical to the one-shot
//! engine, reusable across payload sets without state leakage, and
//! round-trippable through serde.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, which makes the generator helpers (and an import
// they use) look dead to lints; the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use std::sync::Arc;
use tsm_core::cosim::{
    compile_plan, run_transfers, run_transfers_serial, CompiledPlan, CosimTransfer, PlanExecutor,
    TransferShape,
};
use tsm_isa::Vector;
use tsm_topology::{Topology, TspId};

use proptest::prelude::*;

/// Raw generator output for one transfer: TSP picks are taken modulo the
/// topology size, `to` is offset past `from` so the endpoints differ.
type RawTransfer = (u32, u32, u8, u8, usize, u8);

fn raw_transfer() -> impl Strategy<Value = RawTransfer> {
    (0u32..16, 0u32..15, 0u8..8, 0u8..8, 1usize..=20, any::<u8>())
}

/// Materializes raw generator output against a concrete topology. SRAM
/// regions are spaced 32 offsets apart (> max vector count), so distinct
/// transfers never overlap in any chip's memory.
fn build_transfers(nodes: usize, raw: &[RawTransfer]) -> (Topology, Vec<CosimTransfer>) {
    let topo = Topology::fully_connected_nodes(nodes).expect("topology builds");
    let tsps = (nodes * tsm_topology::TSPS_PER_NODE) as u32;
    let transfers = raw
        .iter()
        .enumerate()
        .map(|(idx, &(f, t, src_slice, dst_slice, vectors, seed))| {
            let from = f % tsps;
            let rest = t % (tsps - 1);
            let to = if rest >= from { rest + 1 } else { rest };
            CosimTransfer {
                from: TspId(from),
                to: TspId(to),
                src_slice,
                src_offset: (idx * 32) as u16,
                dst_slice,
                dst_offset: (idx * 32) as u16,
                data: (0..vectors)
                    .map(|v| {
                        Vector::from_fn(|b| (b as u8) ^ seed.wrapping_add((idx * 31 + v) as u8))
                    })
                    .collect(),
            }
        })
        .collect();
    (topo, transfers)
}

/// XORs every payload byte, producing a second payload set with the same
/// shape but disjoint bytes.
fn perturb(transfers: &[CosimTransfer]) -> Vec<CosimTransfer> {
    transfers
        .iter()
        .map(|tr| {
            let mut tr = tr.clone();
            tr.data = tr
                .data
                .iter()
                .map(|v| v.xor(&Vector::splat(0xA5)))
                .collect();
            tr
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The explicit plan/executor pipeline produces exactly the result of
    /// the one-shot engine — success or typed error — on arbitrary
    /// workloads, serial and parallel alike.
    #[test]
    fn plan_execute_is_bit_identical_to_one_shot(
        nodes in 2usize..=3,
        raw in prop::collection::vec(raw_transfer(), 1..=6),
    ) {
        let (topo, transfers) = build_transfers(nodes, &raw);
        let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
        let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

        let legacy_serial = run_transfers_serial(&topo, &transfers);
        let legacy_parallel = run_transfers(&topo, &transfers);
        match compile_plan(&topo, &shapes) {
            Err(e) => {
                // Compile-stage failures surface identically on the wrapper.
                prop_assert_eq!(legacy_serial, Err(e.clone()));
                prop_assert_eq!(legacy_parallel, Err(e));
            }
            Ok(plan) => {
                let mut executor = PlanExecutor::new();
                prop_assert_eq!(&executor.execute_serial(&plan, &payloads), &legacy_serial);
                prop_assert_eq!(&executor.execute(&plan, &payloads), &legacy_parallel);
                // the reused executor stays bit-identical run over run
                prop_assert_eq!(&executor.execute(&plan, &payloads), &legacy_parallel);
            }
        }
    }

    /// Re-executing one plan with a different payload set behaves exactly
    /// like a fresh engine run of those payloads: nothing leaks from the
    /// previous invocation's SRAM, streams, queues, or emissions.
    #[test]
    fn plan_reuse_leaks_no_state_between_payload_sets(
        nodes in 2usize..=3,
        raw in prop::collection::vec(raw_transfer(), 1..=6),
    ) {
        let (topo, transfers) = build_transfers(nodes, &raw);
        let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
        let Ok(plan) = compile_plan(&topo, &shapes) else { return Ok(()) };

        let first: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();
        let perturbed = perturb(&transfers);
        let second: Vec<_> = perturbed.iter().map(CosimTransfer::payload).collect();

        let mut reused = PlanExecutor::new();
        let _ = reused.execute(&plan, &first);
        let warm = reused.execute(&plan, &second);
        let fresh = PlanExecutor::new().execute(&plan, &second);
        prop_assert_eq!(warm, fresh);
    }
}

/// A plan survives serialize → deserialize → execute with the same report
/// as the in-memory original (the artifact is genuinely shippable).
#[test]
fn serde_round_trip_plan_executes_identically() {
    let topo = Topology::fully_connected_nodes(2).unwrap();
    let transfers: Vec<CosimTransfer> = (0..4u32)
        .map(|i| CosimTransfer {
            from: TspId(i),
            to: TspId(15 - i),
            src_slice: 1,
            src_offset: (i * 64) as u16,
            dst_slice: 2,
            dst_offset: (i * 64) as u16,
            data: (0..8 + i as usize)
                .map(|v| Vector::from_fn(|b| (b as u8).wrapping_mul(3) ^ (i as u8 + v as u8)))
                .collect(),
        })
        .collect();
    let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
    let plan = compile_plan(&topo, &shapes).unwrap();

    let json = plan.to_json();
    let revived = CompiledPlan::from_json(&json).unwrap();
    assert_eq!(revived, plan);

    let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();
    let want = PlanExecutor::new().execute(&plan, &payloads).unwrap();
    let got = PlanExecutor::new().execute(&revived, &payloads).unwrap();
    assert_eq!(got, want);
}

/// One executor can serve multiple distinct plans back to back.
#[test]
fn one_executor_serves_many_plans() {
    let topo = Topology::single_node();
    let make = |to: u32, n: usize| CosimTransfer {
        from: TspId(0),
        to: TspId(to),
        src_slice: 0,
        src_offset: 0,
        dst_slice: 1,
        dst_offset: 0,
        data: (0..n).map(|v| Vector::splat(v as u8 + to as u8)).collect(),
    };
    let mut executor = PlanExecutor::new();
    for (to, n) in [(1u32, 4usize), (5, 9), (2, 1)] {
        let tr = make(to, n);
        let shapes = [TransferShape::from(&tr)];
        let plan = compile_plan(&topo, &shapes).unwrap();
        let report = executor.execute(&plan, &[tr.payload()]).unwrap();
        assert_eq!(report.arrivals.len(), 1);
        assert_eq!(report, run_transfers(&topo, &[tr]).unwrap());
    }
}

/// Shared `Arc` payloads are not mutated by execution: the same handles
/// bind to a second invocation bit-exactly.
#[test]
fn payload_handles_are_reusable() {
    let topo = Topology::single_node();
    let tr = CosimTransfer {
        from: TspId(3),
        to: TspId(4),
        src_slice: 2,
        src_offset: 10,
        dst_slice: 3,
        dst_offset: 20,
        data: (0..6)
            .map(|v| Vector::from_fn(|b| b as u8 ^ v as u8))
            .collect(),
    };
    let shapes = [TransferShape::from(&tr)];
    let plan = compile_plan(&topo, &shapes).unwrap();
    let payloads = vec![tr.payload()];
    let handles: Vec<usize> = payloads[0]
        .iter()
        .map(|p| Arc::as_ptr(p) as usize)
        .collect();
    let mut executor = PlanExecutor::new();
    let a = executor.execute(&plan, &payloads).unwrap();
    let b = executor.execute(&plan, &payloads).unwrap();
    assert_eq!(a, b);
    let after: Vec<usize> = payloads[0]
        .iter()
        .map(|p| Arc::as_ptr(p) as usize)
        .collect();
    assert_eq!(handles, after);
}
