//! End-to-end fault-path tests: real payload bytes through the BER
//! channel, FEC correction verified bit-for-bit, and the full
//! replay → blame → failover → recompile → replay loop of
//! [`Runtime::launch`] in [`ExecMode::Datapath`].
//!
//! The targeted-injection tests pin the two FEC guarantees the
//! statistical mode could only assert about *counts*:
//!
//! - any single-bit flip, on any hop of a multi-hop route, is corrected
//!   in situ and the delivered SRAM bytes verify bit-for-bit;
//! - any two flips in one packet are deterministically uncorrectable and
//!   surface with the exact (link, transfer) coordinates.
//!
//! The launch test is the paper-§4.5 acceptance scenario: a marginal
//! cable whose BER defeats SEC-DED, recovered by failover, with final
//! destination SRAM bit-identical to a fault-free run.

use std::sync::Arc;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_core::cosim::{
    compile_plan, CompiledPlan, CosimError, LinkFaultModel, PlanExecutor, TargetedFlip,
    TransferShape,
};
use tsm_core::runtime::{graph_fingerprint, ExecMode, Runtime, SparePolicy};
use tsm_core::system::System;
use tsm_isa::Vector;
use tsm_topology::{LinkId, NodeId, Topology, TspId};

type Payload = Arc<Vector>;

const VECTORS: u32 = 8;
const PAYLOAD_BITS: usize = 2560;

/// A transfer between cross-node TSPs with no direct cable: the route is
/// at least two hops, so corruption can strike an intermediate link.
fn two_hop_setup() -> (CompiledPlan, Vec<Vec<Payload>>) {
    let topo = Topology::fully_connected_nodes(2).unwrap();
    let from = TspId(0);
    let to = topo
        .tsps()
        .find(|&t| t.node() != from.node() && topo.links_between(from, t).is_empty())
        .expect("some non-adjacent cross-node TSP");
    let shapes = [TransferShape {
        from,
        to,
        src_slice: 0,
        src_offset: 0,
        dst_slice: 1,
        dst_offset: 0,
        vectors: VECTORS,
    }];
    let plan = compile_plan(&topo, &shapes).unwrap();
    let payloads = vec![(0..VECTORS)
        .map(|v| {
            Arc::new(Vector::from_fn(|b| {
                (b as u8) ^ (31u8.wrapping_add(v as u8))
            }))
        })
        .collect()];
    (plan, payloads)
}

/// Every scheduled hop of every vector: (transfer, vector, link).
fn all_hops(plan: &CompiledPlan) -> Vec<(u32, u32, LinkId)> {
    plan.chips
        .iter()
        .flat_map(|c| {
            c.deliveries
                .iter()
                .map(|d| (d.vec.transfer, d.vec.vector, d.link))
        })
        .collect()
}

#[test]
fn single_flip_on_any_hop_of_a_multi_hop_route_is_invisible() {
    let (plan, payloads) = two_hop_setup();
    let mut exec = PlanExecutor::new();
    let reference = exec.execute(&plan, &payloads).unwrap();

    let hops = all_hops(&plan);
    // the route really is multi-hop: more deliveries than vectors
    assert!(
        hops.len() > VECTORS as usize,
        "expected a forwarding hop, got {} deliveries",
        hops.len()
    );

    for &(transfer, vector, link) in &hops {
        for bit in [0usize, 1, 997, PAYLOAD_BITS - 1] {
            let faults = LinkFaultModel::targeted_only(vec![TargetedFlip {
                transfer,
                vector,
                link,
                bits: vec![bit],
            }]);
            let report = exec
                .execute_with_faults(&plan, &payloads, &faults)
                .unwrap_or_else(|e| {
                    panic!("flip bit {bit} of v{vector} on {link:?} not corrected: {e}")
                });
            assert_eq!(
                report.fec().corrected,
                1,
                "exactly the struck packet repaired"
            );
            assert_eq!(report.fec().uncorrectable, 0);
            assert_eq!(
                report.dst_digests, reference.dst_digests,
                "bit {bit} of v{vector} on {link:?} leaked into destination SRAM"
            );
        }
    }
}

#[test]
fn double_flip_in_one_packet_is_deterministically_uncorrectable() {
    let (plan, payloads) = two_hop_setup();
    let mut exec = PlanExecutor::new();

    for &(transfer, vector, link) in &all_hops(&plan) {
        let faults = LinkFaultModel::targeted_only(vec![TargetedFlip {
            transfer,
            vector,
            link,
            bits: vec![3, 1200],
        }]);
        match exec.execute_with_faults(&plan, &payloads, &faults) {
            Err(CosimError::Uncorrectable {
                link: l,
                transfer: t,
                ..
            }) => {
                assert_eq!(l, link, "blamed the wrong cable");
                assert_eq!(t, transfer as usize);
            }
            other => {
                panic!("double flip of v{vector} on {link:?} must be uncorrectable, got {other:?}")
            }
        }
    }
}

/// A two-TSP logical pipeline moving 100 vectors across nodes. The
/// destination TSP is reachable only through node 1's gateway TSP plus an
/// intra-node-1 ring hop: when that node's cables go marginal, blame
/// voting sees node 1 on both faulted hops but node 0 only on the first.
fn logical_pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 1_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes: 32_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn datapath_runtime() -> Runtime {
    Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath)
}

/// The PR's acceptance scenario: a marginal cable with a datapath BER that
/// defeats SEC-DED. Every launch must converge to destination SRAM
/// bit-identical to the fault-free run, and the fault must actually have
/// been exercised — replays consumed, packets corrected in situ, the
/// marginal node failed over — not sidestepped.
///
/// Scanned over seeds (the local rand stub and the real `StdRng` differ
/// numerically, so no single magic seed is portable): the bit-identity
/// invariant must hold for *every* seed; the fault-exercise profile for
/// the overwhelming majority.
#[test]
fn marginal_link_launch_recovers_bit_identical_to_fault_free() {
    // Fault-free reference digests (BER 0 everywhere).
    let reference = {
        let mut rt = datapath_runtime();
        rt.set_ber(0.0, 0.0);
        rt.launch(&logical_pipeline(), 0).unwrap()
    };
    assert_eq!(reference.dst_digests.len(), 1);
    assert!(reference.fec().is_clean_run());

    let mut exercised = 0u32;
    for seed in 0..16u64 {
        let mut rt = datapath_runtime();
        // Healthy cables perfect, the marginal ones at a BER where two
        // flips routinely land in one 2560-bit packet.
        rt.set_ber(0.0, 2e-4);
        let victim = NodeId(1);
        let marginal: Vec<LinkId> = rt
            .system()
            .topology()
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        for l in marginal {
            rt.degrade_link(l);
        }

        let out = rt.launch(&logical_pipeline(), seed).unwrap();
        // The invariant: whatever the fault pattern, the delivered SRAM
        // bytes are exactly the fault-free ones.
        assert_eq!(
            out.dst_digests, reference.dst_digests,
            "seed {seed}: corrupted bytes reached destination SRAM"
        );
        assert!(out.fec().is_clean_run(), "seed {seed}: final run not clean");

        if out.attempts() >= 2 && out.fec_total().corrected > 0 && out.failovers == vec![victim] {
            assert!(
                out.fec_total().uncorrectable > 0,
                "seed {seed}: failover without an uncorrectable packet"
            );
            exercised += 1;
        }
    }
    assert!(
        exercised >= 8,
        "only {exercised}/16 seeds exercised replay+correction+failover"
    );
}

/// Replay-only recovery: a uniform BER low enough that an uncorrectable
/// packet is transient, not persistent — some seed must recover by replay
/// alone (no failover), and every recovery must still be bit-identical.
#[test]
fn transient_uncorrectable_recovers_by_replay_alone_for_some_seed() {
    let reference = {
        let mut rt = datapath_runtime();
        rt.set_ber(0.0, 0.0);
        rt.launch(&logical_pipeline(), 0).unwrap()
    };

    let mut replay_only = 0u32;
    for seed in 0..48u64 {
        let mut rt = datapath_runtime();
        // ~100-200 packets/attempt at λ ≈ 0.026 flips/packet: double
        // flips are rare but present across the scan.
        rt.set_ber(1e-5, 1e-5);
        match rt.launch(&logical_pipeline(), seed) {
            Ok(out) => {
                assert_eq!(out.dst_digests, reference.dst_digests, "seed {seed}");
                if out.attempts() >= 2 && out.failovers.is_empty() {
                    replay_only += 1;
                }
            }
            // Statistically possible (every attempt on every mapping
            // struck): not this test's subject.
            Err(_) => continue,
        }
    }
    assert!(replay_only >= 1, "no seed recovered by replay alone");
}

/// Structural fingerprints must separate graphs the old Debug-string hash
/// ran together, and be insensitive to nothing.
#[test]
fn fingerprint_separates_field_boundary_shifts() {
    // "cycles: 12, cycles: 1" vs "cycles: 1, cycles: 21" — same digit
    // stream across the node boundary under the old format!-based hash.
    let mut a = Graph::new();
    a.add(TspId(0), OpKind::Compute { cycles: 12 }, vec![])
        .unwrap();
    a.add(TspId(0), OpKind::Compute { cycles: 1 }, vec![])
        .unwrap();
    let mut b = Graph::new();
    b.add(TspId(0), OpKind::Compute { cycles: 1 }, vec![])
        .unwrap();
    b.add(TspId(0), OpKind::Compute { cycles: 21 }, vec![])
        .unwrap();
    assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Ops encoded as (device, kind selector, parameter); deps chain each
    /// node to its predecessor so every graph is valid.
    #[allow(dead_code)] // referenced only inside proptest! bodies
    fn build_graph(ops: &[(u8, u8, u64)]) -> Graph {
        let mut g = Graph::new();
        let mut prev = None;
        for &(dev, kind, param) in ops {
            let device = TspId(u32::from(dev % 8));
            let kind = match kind % 4 {
                0 => OpKind::Compute { cycles: param },
                1 => OpKind::Transfer {
                    to: TspId(u32::from(dev % 8) + 8),
                    bytes: param,
                    allow_nonminimal: param % 2 == 0,
                },
                2 => OpKind::HostInput { bytes: param },
                _ => OpKind::HostOutput { bytes: param },
            };
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add(device, kind, deps).unwrap());
        }
        g
    }

    /// Canonical structural encoding (field-separated, unlike the old
    /// Debug-string concatenation) used to decide whether two generated
    /// graphs are actually distinct.
    #[allow(dead_code)] // referenced only inside proptest! bodies
    fn canon(g: &Graph) -> String {
        g.nodes()
            .iter()
            .map(|n| format!("{:?}|{:?}|{:?}", n.device, n.kind, n.deps))
            .collect::<Vec<_>>()
            .join("\u{1f}")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Distinct graphs fingerprint differently (the compile cache
        /// must never alias two programs).
        #[test]
        fn distinct_graphs_fingerprint_differently(
            a in proptest::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000), 1..8),
            b in proptest::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000), 1..8),
        ) {
            let (ga, gb) = (build_graph(&a), build_graph(&b));
            if canon(&ga) != canon(&gb) {
                prop_assert_ne!(graph_fingerprint(&ga), graph_fingerprint(&gb));
            } else {
                prop_assert_eq!(graph_fingerprint(&ga), graph_fingerprint(&gb));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any single-bit flip on any hop of the multi-hop route is
        /// corrected and the delivered bytes verify bit-for-bit; adding a
        /// second flip to the same packet is deterministically
        /// uncorrectable on that exact hop.
        #[test]
        fn random_flip_corrected_second_flip_uncorrectable(
            hop_sel in any::<prop::sample::Index>(),
            bit in 0usize..PAYLOAD_BITS,
            second in 0usize..PAYLOAD_BITS,
        ) {
            let (plan, payloads) = two_hop_setup();
            let mut exec = PlanExecutor::new();
            let reference = exec.execute(&plan, &payloads).unwrap();
            let hops = all_hops(&plan);
            let (transfer, vector, link) = hops[hop_sel.index(hops.len())];

            let single = LinkFaultModel::targeted_only(vec![TargetedFlip {
                transfer, vector, link, bits: vec![bit],
            }]);
            let report = exec.execute_with_faults(&plan, &payloads, &single).unwrap();
            prop_assert_eq!(report.fec().corrected, 1);
            prop_assert_eq!(report.dst_digests, reference.dst_digests);

            if second != bit {
                let double = LinkFaultModel::targeted_only(vec![TargetedFlip {
                    transfer, vector, link, bits: vec![bit, second],
                }]);
                match exec.execute_with_faults(&plan, &payloads, &double) {
                    Err(CosimError::Uncorrectable { link: l, transfer: t, .. }) => {
                        prop_assert_eq!(l, link);
                        prop_assert_eq!(t, transfer as usize);
                    }
                    other => prop_assert!(false, "expected Uncorrectable, got {:?}", other),
                }
            }
        }
    }
}
