//! Synchronization layer: maintaining determinism across a distributed
//! system of plesiochronous TSPs (paper §3).
//!
//! A multi-TSP system has no shared clock. Determinism across chips rests
//! on three mechanisms, each modelled by a module here:
//!
//! 1. [`hac`] — per-TSP **hardware-aligned counters** exchanged every 256
//!    cycles to build a global consensus time, plus the free-running
//!    **software-aligned counter** used to measure accumulated drift;
//! 2. [`align`] — **initial program alignment**: link-latency
//!    characterization by HAC reflection (paper Fig 7(a), Table 2),
//!    parent/child HAC convergence, and the DESKEW-based program launch
//!    along a spanning tree with overhead `(⌊L/period⌋+1)·h` epochs
//!    (paper §3.2, Fig 7(b));
//! 3. [`deskew`] — **runtime resynchronization** with RUNTIME_DESKEW,
//!    absorbing each TSP's accumulated SAC−HAC drift during long-running
//!    computations (paper §3.3).
//!
//! The physical substitution: real oscillators are replaced by
//! [`clock::LocalClock`] (a parts-per-million frequency offset plus the
//! link-jitter already modelled in `tsm-link`), which is precisely the
//! information the HAC protocol observes.

pub mod align;
pub mod clock;
pub mod deskew;
pub mod hac;
pub mod tree;

pub use align::{characterize_link, AlignmentTrace, InitialAlignment, SpanningTree};
pub use clock::LocalClock;
pub use deskew::RuntimeDeskew;
pub use hac::{AlignedCounter, HAC_PERIOD};
pub use tree::{simulate_tree_alignment, TreeAlignmentTrace};
