//! Per-TSP oscillator model.
//!
//! Each TSP has an independent clock source (paper §3.2). Crystal
//! oscillators are specified in parts-per-million of frequency error; the
//! HAC protocol exists to absorb exactly this. The model is a linear clock:
//! local elapsed cycles = global elapsed cycles × (1 + ppm·10⁻⁶).

use rand::Rng;

/// A free-running local oscillator with a fixed frequency offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalClock {
    /// Frequency error in parts per million. Positive runs fast.
    pub ppm: f64,
}

impl LocalClock {
    /// An ideal clock (the global reference).
    pub fn reference() -> Self {
        LocalClock { ppm: 0.0 }
    }

    /// A clock with the given frequency error.
    pub fn with_ppm(ppm: f64) -> Self {
        LocalClock { ppm }
    }

    /// Draws a clock uniformly within ±`max_ppm` (typical C2C deployments
    /// specify ±100 ppm oscillators).
    pub fn random<R: Rng>(max_ppm: f64, rng: &mut R) -> Self {
        LocalClock {
            ppm: rng.gen_range(-max_ppm..=max_ppm),
        }
    }

    /// Local cycles elapsed while `global_cycles` reference cycles pass.
    pub fn local_elapsed(&self, global_cycles: f64) -> f64 {
        global_cycles * (1.0 + self.ppm * 1e-6)
    }

    /// Accumulated drift (local − global) after `global_cycles` reference
    /// cycles, in cycles.
    pub fn drift_after(&self, global_cycles: f64) -> f64 {
        self.local_elapsed(global_cycles) - global_cycles
    }

    /// Reference cycles until this clock accumulates `max_drift_cycles` of
    /// drift — the resynchronization deadline driving how often
    /// RUNTIME_DESKEW must be scheduled (paper §3.3).
    pub fn cycles_until_drift(&self, max_drift_cycles: f64) -> f64 {
        if self.ppm == 0.0 {
            f64::INFINITY
        } else {
            max_drift_cycles / (self.ppm.abs() * 1e-6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_clock_never_drifts() {
        let c = LocalClock::reference();
        assert_eq!(c.drift_after(1e12), 0.0);
        assert_eq!(c.cycles_until_drift(1.0), f64::INFINITY);
    }

    #[test]
    fn hundred_ppm_drifts_100_cycles_per_million() {
        let c = LocalClock::with_ppm(100.0);
        assert!((c.drift_after(1_000_000.0) - 100.0).abs() < 1e-9);
        let slow = LocalClock::with_ppm(-50.0);
        assert!((slow.drift_after(1_000_000.0) + 50.0).abs() < 1e-9);
    }

    #[test]
    fn drift_deadline_matches_rate() {
        // At 100 ppm, 126 cycles (half an epoch) of drift take 1.26M cycles
        // (1.4 ms at 900 MHz) — resync is cheap relative to that.
        let c = LocalClock::with_ppm(100.0);
        assert!((c.cycles_until_drift(126.0) - 1.26e6).abs() < 1.0);
    }

    #[test]
    fn random_clocks_stay_in_range_and_are_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = LocalClock::random(100.0, &mut rng);
            assert!(c.ppm.abs() <= 100.0);
        }
        let a = LocalClock::random(100.0, &mut StdRng::seed_from_u64(2));
        let b = LocalClock::random(100.0, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
    }
}
