//! Link characterization, HAC convergence, and initial program alignment
//! (paper §3.1–3.2, Fig 7, Table 2).

use crate::clock::LocalClock;
use crate::hac::{signed_mod_difference, AlignedCounter, HAC_PERIOD};
use rand::Rng;
use tsm_isa::timing::HAC_EXCHANGE_INTERVAL;
use tsm_link::{LatencyModel, LatencyStats};
use tsm_topology::{route, LinkId, Topology, TspId};

/// Characterizes one link's latency by the HAC reflection procedure of
/// paper §3.1 / Fig 7(a): the parent transmits its HAC value, the peer
/// reflects it, and the round trip (two one-way samples) is halved.
///
/// Repeating `iterations` times yields the statistics of paper Table 2
/// (the paper used 100 K iterations per link).
pub fn characterize_link<R: Rng>(
    model: &LatencyModel,
    iterations: usize,
    rng: &mut R,
) -> LatencyStats {
    let samples: Vec<u64> = (0..iterations)
        .map(|_| {
            let outbound = model.sample(rng);
            let inbound = model.sample(rng);
            // The reflected HAC difference is the round trip; the one-way
            // estimate is half, rounded to a whole cycle.
            (outbound + inbound).div_ceil(2)
        })
        .collect();
    LatencyStats::from_samples(&samples)
}

/// One step of the parent/child HAC alignment loop: the trace of the
/// child's alignment error over successive exchanges.
#[derive(Debug, Clone)]
pub struct AlignmentTrace {
    /// Absolute alignment error (cycles) after each exchange.
    pub errors: Vec<f64>,
    /// Exchanges needed to first enter the jitter neighborhood.
    pub converged_after: Option<usize>,
}

/// Simulates the parent/child HAC convergence protocol (paper §3.1).
///
/// Every [`HAC_EXCHANGE_INTERVAL`] reference cycles the parent transmits
/// its HAC; the child receives it after a jittered link latency, adds the
/// *characterized mean* latency `l_mean`, compares to its own HAC and
/// applies a rate-limited adjustment. Between exchanges the child's clock
/// drifts at its ppm offset. Convergence is reached when the error stays
/// within the link's jitter neighborhood.
pub fn align_pair<R: Rng>(
    link: &LatencyModel,
    l_mean: u64,
    child_clock: LocalClock,
    initial_offset: u64,
    max_adjust_per_exchange: u64,
    exchanges: usize,
    rng: &mut R,
) -> AlignmentTrace {
    let mut parent = AlignedCounter::starting_at(0);
    let mut child = AlignedCounter::starting_at(initial_offset);
    let mut residual_drift = 0.0f64;
    let mut errors = Vec::with_capacity(exchanges);
    let mut converged_after = None;
    let neighborhood = (link.worst_case() - link.best_case()) as f64 / 2.0 + 1.0;

    for i in 0..exchanges {
        // Advance both counters by one exchange interval; the child's local
        // clock ticks slightly faster/slower.
        parent.advance(HAC_EXCHANGE_INTERVAL);
        let child_cycles = child_clock.local_elapsed(HAC_EXCHANGE_INTERVAL as f64) + residual_drift;
        let whole = child_cycles.floor();
        residual_drift = child_cycles - whole;
        child.advance(whole as u64);

        // The parent transmits its instantaneous HAC value; it arrives at
        // the child after an actual (jittered) latency. At arrival, the
        // child's estimate of the parent's *current* HAC is the received
        // value plus the characterized mean latency; using the mean instead
        // of the unknowable actual latency is exactly the protocol's
        // irreducible error (paper §3.1: counters "converge within a
        // neighborhood determined by the jitter of the link latency").
        let transmitted = parent.value();
        let actual_latency = link.sample(rng);
        let child_at_arrival = (child.value() + actual_latency) % HAC_PERIOD;
        let estimate_of_parent_now = (transmitted + l_mean) % HAC_PERIOD;
        let delta = signed_mod_difference(estimate_of_parent_now as i64 - child_at_arrival as i64);
        child.adjust(delta, max_adjust_per_exchange);

        // True alignment error versus the parent's actual HAC.
        let err = signed_mod_difference(child.value() as i64 - parent.value() as i64).abs() as f64;
        errors.push(err);
        if converged_after.is_none() && err <= neighborhood {
            converged_after = Some(i + 1);
        }
    }
    AlignmentTrace {
        errors,
        converged_after,
    }
}

/// A spanning tree of parent/child HAC relationships over the topology
/// (paper §3.1: "a spanning tree of parent/child HAC relationships is
/// established").
#[derive(Debug, Clone)]
pub struct SpanningTree {
    /// Root TSP (the HAC reference for the whole system).
    pub root: TspId,
    /// For each TSP: `Some((parent, link))`, or `None` for the root.
    pub parent: Vec<Option<(TspId, LinkId)>>,
    /// Tree depth of each TSP (root = 0).
    pub depth: Vec<usize>,
    /// Height of the tree (max depth).
    pub height: usize,
}

impl SpanningTree {
    /// Builds the BFS spanning tree rooted at `root`. BFS minimizes the
    /// tree height, which directly minimizes the initial-alignment
    /// overhead.
    pub fn build(topo: &Topology, root: TspId) -> Self {
        let n = topo.num_tsps();
        let mut parent: Vec<Option<(TspId, LinkId)>> = vec![None; n];
        let mut depth = vec![usize::MAX; n];
        depth[root.index()] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        let mut height = 0;
        while let Some(t) = queue.pop_front() {
            for &(lid, peer) in topo.neighbors(t) {
                if depth[peer.index()] != usize::MAX || topo.is_failed(peer) {
                    continue;
                }
                depth[peer.index()] = depth[t.index()] + 1;
                parent[peer.index()] = Some((t, lid));
                height = height.max(depth[peer.index()]);
                queue.push_back(peer);
            }
        }
        SpanningTree {
            root,
            parent,
            depth,
            height,
        }
    }

    /// Number of TSPs reached by the tree (all, unless nodes failed).
    pub fn reached(&self) -> usize {
        self.depth.iter().filter(|&&d| d != usize::MAX).count()
    }
}

/// The initial program alignment procedure of paper §3.2 / Fig 7(b).
#[derive(Debug, Clone)]
pub struct InitialAlignment {
    /// The HAC distribution tree.
    pub tree: SpanningTree,
    /// Worst-case single-link latency along the tree, in cycles.
    pub max_link_latency: u64,
    /// Synchronization overhead in epochs: `(⌊L/period⌋ + 1) · h`.
    pub overhead_epochs: u64,
    /// Synchronization overhead in cycles.
    pub overhead_cycles: u64,
}

impl InitialAlignment {
    /// Plans the DESKEW/TRANSMIT program launch over `topo` from `root`.
    ///
    /// Each hop of the spanning tree costs `⌊L/period⌋ + 1` epochs, where
    /// `L` is the worst-case latency of any single link (paper §3.2).
    pub fn plan(topo: &Topology, root: TspId) -> Self {
        let tree = SpanningTree::build(topo, root);
        let max_link_latency = tree
            .parent
            .iter()
            .flatten()
            .map(|&(_, lid)| LatencyModel::for_class(topo.link(lid).class).worst_case())
            .max()
            .unwrap_or(0);
        let per_hop_epochs = max_link_latency / HAC_PERIOD + 1;
        let overhead_epochs = per_hop_epochs * tree.height as u64;
        InitialAlignment {
            tree,
            max_link_latency,
            overhead_epochs,
            overhead_cycles: overhead_epochs * HAC_PERIOD,
        }
    }
}

/// Convenience: the minimal-hop route used for discussion in docs/tests.
pub fn tree_route_hops(topo: &Topology, from: TspId, to: TspId) -> usize {
    route::shortest_path(topo, from, to)
        .map(|p| p.hops())
        .unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsm_topology::CableClass;

    #[test]
    fn characterization_reproduces_table2() {
        // Table 2: seven links, 100K iterations each; min 209-211, mean
        // 216.3-217.4, max 225-228, std 2.6-2.9. Halving the round trip
        // tightens std by ~sqrt(2), so accept 1.8-3.0.
        let model = LatencyModel::for_class(CableClass::IntraNode);
        let mut rng = StdRng::seed_from_u64(2022);
        for link in 0..7 {
            let s = characterize_link(&model, 100_000, &mut rng);
            assert!(s.min >= 208 && s.min <= 212, "link {link}: min {}", s.min);
            assert!(
                s.mean > 215.5 && s.mean < 218.0,
                "link {link}: mean {}",
                s.mean
            );
            assert!(s.max >= 222 && s.max <= 229, "link {link}: max {}", s.max);
            assert!(s.std > 1.5 && s.std < 3.1, "link {link}: std {}", s.std);
        }
    }

    #[test]
    fn pair_alignment_converges_to_jitter_neighborhood() {
        let link = LatencyModel::for_class(CableClass::IntraNode);
        let mut rng = StdRng::seed_from_u64(7);
        let trace = align_pair(
            &link,
            217, // characterized mean
            LocalClock::with_ppm(80.0),
            100, // initial misalignment
            4,   // max adjustment per exchange
            200,
            &mut rng,
        );
        let converged = trace.converged_after.expect("alignment should converge");
        assert!(converged < 100, "took {converged} exchanges");
        // After convergence the error stays bounded by the jitter window.
        let tail = &trace.errors[converged..];
        assert!(
            tail.iter().all(|&e| e <= 14.0),
            "tail error too large: {tail:?}"
        );
    }

    #[test]
    fn alignment_tolerates_slow_and_fast_children() {
        let link = LatencyModel::for_class(CableClass::IntraNode);
        for ppm in [-100.0, -10.0, 10.0, 100.0] {
            let mut rng = StdRng::seed_from_u64(9);
            let trace = align_pair(&link, 217, LocalClock::with_ppm(ppm), 50, 4, 300, &mut rng);
            assert!(
                trace.converged_after.is_some(),
                "ppm {ppm} failed to converge"
            );
        }
    }

    #[test]
    fn spanning_tree_covers_single_node_at_height_one() {
        let topo = Topology::single_node();
        let tree = SpanningTree::build(&topo, TspId(0));
        assert_eq!(tree.height, 1);
        assert_eq!(tree.reached(), 8);
        assert!(tree.parent[0].is_none());
        for i in 1..8 {
            let (p, _) = tree.parent[i].unwrap();
            assert_eq!(p, TspId(0));
        }
    }

    #[test]
    fn spanning_tree_height_tracks_regime_diameter() {
        let topo = Topology::fully_connected_nodes(4).unwrap();
        let tree = SpanningTree::build(&topo, TspId(0));
        assert!(tree.height <= 3);
        assert_eq!(tree.reached(), 32);
    }

    #[test]
    fn initial_alignment_overhead_formula() {
        // Intra-node worst-case latency 228 < 252, so each hop costs
        // (228/252 + 1) = 1 epoch; a single node is height 1 -> 1 epoch.
        let topo = Topology::single_node();
        let plan = InitialAlignment::plan(&topo, TspId(0));
        assert_eq!(plan.max_link_latency, 228);
        assert_eq!(plan.overhead_epochs, 1);
        assert_eq!(plan.overhead_cycles, HAC_PERIOD);
    }

    #[test]
    fn initial_alignment_scales_with_tree_height() {
        let topo = Topology::fully_connected_nodes(8).unwrap();
        let plan = InitialAlignment::plan(&topo, TspId(0));
        // inter-node links worst case 442 cycles -> 2 epochs per hop
        assert!(plan.max_link_latency > HAC_PERIOD);
        assert_eq!(
            plan.overhead_epochs,
            (plan.max_link_latency / HAC_PERIOD + 1) * plan.tree.height as u64
        );
    }

    #[test]
    fn alignment_skips_failed_nodes() {
        let mut topo = Topology::fully_connected_nodes(3).unwrap();
        topo.fail_node(tsm_topology::NodeId(2));
        let tree = SpanningTree::build(&topo, TspId(0));
        assert_eq!(tree.reached(), 16);
    }
}
