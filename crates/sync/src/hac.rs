//! Hardware- and software-aligned counters (paper §3.1, §3.3).
//!
//! The HAC is an 8-bit free-running counter with a 252-cycle period (4 of
//! the 256 values are reserved for control codes). A TSP's HAC is
//! continuously nudged toward its parent's; the SAC is an identical counter
//! that is *never* adjusted, so `HAC − SAC` measures accumulated local
//! drift since the last resynchronization.

use tsm_isa::timing;

/// The epoch length in cycles (re-exported from `tsm-isa` for convenience).
pub const HAC_PERIOD: u64 = timing::HAC_PERIOD;

/// A free-running counter with period [`HAC_PERIOD`], supporting the
/// rate-limited adjustment of the HAC alignment protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignedCounter {
    /// Current counter value, in `[0, HAC_PERIOD)`.
    value: u64,
    /// Number of completed periods (epochs) since construction.
    epochs: u64,
}

impl AlignedCounter {
    /// A counter starting at `value` (reduced mod the period).
    pub fn starting_at(value: u64) -> Self {
        AlignedCounter {
            value: value % HAC_PERIOD,
            epochs: 0,
        }
    }

    /// Current value in `[0, HAC_PERIOD)`.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Completed epochs since construction.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Advances the counter by `cycles`, returning the number of epoch
    /// boundaries (overflows) crossed.
    pub fn advance(&mut self, cycles: u64) -> u64 {
        let total = self.value + cycles;
        let crossed = total / HAC_PERIOD;
        self.value = total % HAC_PERIOD;
        self.epochs += crossed;
        crossed
    }

    /// Cycles until the next epoch boundary (a DESKEW instruction stalls
    /// for exactly this long, paper §3.2).
    pub fn cycles_to_epoch(&self) -> u64 {
        HAC_PERIOD - self.value
    }

    /// Applies a rate-limited adjustment toward `delta` (positive moves the
    /// counter forward), as the HAC alignment hardware does; the maximum
    /// adjustment per application is configurable (paper §3.1: "the maximum
    /// adjustment rate is configurable"). Returns the adjustment applied.
    pub fn adjust(&mut self, delta: i64, max_rate: u64) -> i64 {
        let applied = delta.clamp(-(max_rate as i64), max_rate as i64);
        let v = self.value as i64 + applied;
        self.value = v.rem_euclid(HAC_PERIOD as i64) as u64;
        applied
    }

    /// Signed difference `self − other` on the circle, in `(−P/2, P/2]`.
    pub fn signed_difference(&self, other: &AlignedCounter) -> i64 {
        signed_mod_difference(self.value as i64 - other.value as i64)
    }
}

/// Reduces a difference of counter values to the signed range
/// `(−HAC_PERIOD/2, HAC_PERIOD/2]`.
pub fn signed_mod_difference(raw: i64) -> i64 {
    let p = HAC_PERIOD as i64;
    let mut d = raw.rem_euclid(p);
    if d > p / 2 {
        d -= p;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_wraps_and_counts_epochs() {
        let mut c = AlignedCounter::starting_at(250);
        let crossed = c.advance(5);
        assert_eq!(crossed, 1);
        assert_eq!(c.value(), 3);
        assert_eq!(c.epochs(), 1);
        assert_eq!(c.advance(252 * 3), 3);
        assert_eq!(c.value(), 3);
        assert_eq!(c.epochs(), 4);
    }

    #[test]
    fn starting_value_is_reduced() {
        assert_eq!(AlignedCounter::starting_at(252).value(), 0);
        assert_eq!(AlignedCounter::starting_at(505).value(), 1);
    }

    #[test]
    fn cycles_to_epoch_complements_value() {
        let c = AlignedCounter::starting_at(200);
        assert_eq!(c.cycles_to_epoch(), 52);
        let mut c2 = c;
        c2.advance(c.cycles_to_epoch());
        assert_eq!(c2.value(), 0);
        assert_eq!(c2.epochs(), 1);
    }

    #[test]
    fn adjust_is_rate_limited() {
        let mut c = AlignedCounter::starting_at(10);
        assert_eq!(c.adjust(100, 4), 4);
        assert_eq!(c.value(), 14);
        assert_eq!(c.adjust(-100, 4), -4);
        assert_eq!(c.value(), 10);
    }

    #[test]
    fn adjust_wraps_around_zero() {
        let mut c = AlignedCounter::starting_at(1);
        c.adjust(-3, 10);
        assert_eq!(c.value(), 250);
    }

    #[test]
    fn signed_difference_takes_shortest_arc() {
        let a = AlignedCounter::starting_at(2);
        let b = AlignedCounter::starting_at(250);
        // 2 - 250 = -248 ≡ +4 on the circle
        assert_eq!(a.signed_difference(&b), 4);
        assert_eq!(b.signed_difference(&a), -4);
    }

    #[test]
    fn signed_mod_difference_range() {
        for raw in -600..600 {
            let d = signed_mod_difference(raw);
            assert!(
                d > -(HAC_PERIOD as i64) / 2 && d <= HAC_PERIOD as i64 / 2,
                "raw {raw} -> {d}"
            );
            assert_eq!((raw - d).rem_euclid(HAC_PERIOD as i64), 0);
        }
    }
}
