//! Runtime resynchronization via RUNTIME_DESKEW (paper §3.3).
//!
//! During a long-running computation each TSP's clock drifts. The SAC
//! free-runs on local cycles while the HAC tracks the global reference, so
//! `δt = SAC − HAC` is the accumulated local drift. A
//! `RUNTIME_DESKEW target` instruction stalls for `target ± δt` cycles,
//! putting every TSP back on the global schedule; the residual error is the
//! link jitter.

use crate::clock::LocalClock;
use crate::hac::signed_mod_difference;
use tsm_isa::timing::HAC_PERIOD;

/// Models one TSP's RUNTIME_DESKEW execution.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeDeskew {
    /// The nominal stall, in cycles. Must exceed the largest drift the
    /// schedule can accumulate between resync points, or a fast TSP would
    /// need a negative stall.
    pub target_cycles: u64,
}

impl RuntimeDeskew {
    /// Creates a deskew with the given nominal stall.
    pub fn new(target_cycles: u64) -> Self {
        RuntimeDeskew { target_cycles }
    }

    /// The actual stall executed when the TSP has drifted by `delta_t`
    /// cycles (positive = local SAC ahead of global HAC, i.e. the local
    /// clock ran fast): stall `target + δt`, and vice versa (paper §3.3).
    ///
    /// Returns `None` if the drift exceeds the target (the schedule gave
    /// this TSP an infeasible deskew budget).
    pub fn stall_cycles(&self, delta_t: i64) -> Option<u64> {
        let stall = self.target_cycles as i64 + delta_t;
        u64::try_from(stall).ok()
    }

    /// Simulates a program of `segments` compute segments, each
    /// `segment_cycles` of global reference time, with a RUNTIME_DESKEW
    /// between segments. Returns the TSP's absolute drift (in cycles) just
    /// before each deskew, demonstrating that drift never accumulates
    /// beyond one segment's worth (paper §3.3: "the accumulated global
    /// error is reduced to the link jitter").
    pub fn simulate_program(
        &self,
        clock: LocalClock,
        segment_cycles: u64,
        segments: usize,
    ) -> Vec<f64> {
        let mut drift_before_deskew = Vec::with_capacity(segments);
        let mut residual = 0.0f64; // drift carried past each resync (ideally 0)
        for _ in 0..segments {
            // Local clock accumulates drift over the segment.
            let drift = clock.drift_after(segment_cycles as f64) + residual;
            drift_before_deskew.push(drift.abs());
            // SAC − HAC measures the drift exactly (to cycle resolution).
            let measured = drift.round() as i64;
            let stall = self
                .stall_cycles(measured)
                .expect("deskew budget must cover accumulated drift");
            let _ = stall;
            // After the stall, local time is realigned; the sub-cycle
            // remainder persists.
            residual = drift - measured as f64;
        }
        drift_before_deskew
    }

    /// The SAC−HAC delta, given counter values (helper mirroring the ISA's
    /// signed comparison on the counter circle).
    pub fn measure_delta(sac_value: u64, hac_value: u64) -> i64 {
        signed_mod_difference(sac_value as i64 - hac_value as i64)
    }

    /// Maximum drift one epoch of RUNTIME_DESKEW can absorb.
    pub fn max_absorbable_drift() -> u64 {
        HAC_PERIOD / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_absorbs_fast_clock() {
        let d = RuntimeDeskew::new(1000);
        // Local ran 30 cycles fast: stall longer.
        assert_eq!(d.stall_cycles(30), Some(1030));
        // Local ran slow: stall less.
        assert_eq!(d.stall_cycles(-30), Some(970));
    }

    #[test]
    fn infeasible_budget_is_detected() {
        let d = RuntimeDeskew::new(10);
        assert_eq!(d.stall_cycles(-11), None);
    }

    #[test]
    fn drift_never_accumulates_across_segments() {
        // 100 ppm clock, 1M-cycle segments: per-segment drift = 100 cycles.
        let d = RuntimeDeskew::new(500);
        let drifts = d.simulate_program(LocalClock::with_ppm(100.0), 1_000_000, 50);
        assert_eq!(drifts.len(), 50);
        for (i, &drift) in drifts.iter().enumerate() {
            assert!(drift < 101.0, "segment {i}: drift {drift} accumulated");
            assert!(drift > 99.0, "segment {i}: drift {drift} too small");
        }
    }

    #[test]
    fn without_deskew_drift_would_accumulate() {
        // Sanity check of the premise: 50 segments of 1M cycles at 100 ppm
        // would otherwise accumulate 5000 cycles (~20 epochs).
        let total = LocalClock::with_ppm(100.0).drift_after(50_000_000.0);
        assert!(total > 4999.0);
    }

    #[test]
    fn measure_delta_uses_circle_arithmetic() {
        assert_eq!(RuntimeDeskew::measure_delta(5, 250), 7);
        assert_eq!(RuntimeDeskew::measure_delta(250, 5), -7);
        assert_eq!(RuntimeDeskew::measure_delta(10, 10), 0);
    }

    #[test]
    fn absorbable_drift_is_half_period() {
        assert_eq!(RuntimeDeskew::max_absorbable_drift(), 126);
    }
}
