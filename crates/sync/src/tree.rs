//! Whole-network HAC alignment: the spanning-tree protocol of paper §3.1
//! simulated across every TSP simultaneously.
//!
//! [`align_pair`](crate::align::align_pair) models one parent/child edge;
//! this module runs the full tree — every TSP with its own drifting clock,
//! every edge with its own jittered link — and reports the *global* skew
//! (max |HACᵢ − HAC_root| over all TSPs) converging into the
//! jitter-and-depth-determined neighborhood.

use crate::align::SpanningTree;
use crate::clock::LocalClock;
use crate::hac::{signed_mod_difference, AlignedCounter, HAC_PERIOD};
use rand::Rng;
use tsm_isa::timing::HAC_EXCHANGE_INTERVAL;
use tsm_link::LatencyModel;
use tsm_topology::{Topology, TspId};

/// The global alignment trace of a whole-network simulation.
#[derive(Debug, Clone)]
pub struct TreeAlignmentTrace {
    /// Max absolute HAC error vs the root, after each exchange round.
    pub max_errors: Vec<f64>,
    /// Rounds until the global skew first entered the neighborhood.
    pub converged_after: Option<usize>,
    /// The neighborhood bound used (cycles): per-hop jitter × tree depth.
    pub neighborhood: f64,
}

/// Simulates `rounds` HAC exchange rounds over the spanning tree of
/// `topo`, with every non-root TSP's oscillator drawn within ±`max_ppm`
/// and per-edge latency drawn from that edge's cable class.
pub fn simulate_tree_alignment<R: Rng>(
    topo: &Topology,
    root: TspId,
    max_ppm: f64,
    max_adjust_per_exchange: u64,
    rounds: usize,
    rng: &mut R,
) -> TreeAlignmentTrace {
    let tree = SpanningTree::build(topo, root);
    let n = topo.num_tsps();

    // Per-TSP state.
    let mut clocks = vec![LocalClock::reference(); n];
    let mut hacs: Vec<AlignedCounter> = Vec::with_capacity(n);
    let mut residue = vec![0.0f64; n];
    for (i, clock) in clocks.iter_mut().enumerate() {
        if TspId(i as u32) != root {
            *clock = LocalClock::random(max_ppm, rng);
        }
        hacs.push(AlignedCounter::starting_at(rng.gen_range(0..HAC_PERIOD)));
    }
    hacs[root.index()] = AlignedCounter::starting_at(0);

    // Per-edge latency models and characterized means.
    let edge_models: Vec<Option<LatencyModel>> = (0..n)
        .map(|i| tree.parent[i].map(|(_, lid)| LatencyModel::for_class(topo.link(lid).class)))
        .collect();

    // Neighborhood: per-edge jitter half-window accumulates down the tree.
    let worst_jitter = edge_models
        .iter()
        .flatten()
        .map(|m| (m.worst_case() - m.best_case()) as f64 / 2.0)
        .fold(0.0, f64::max);
    let neighborhood = worst_jitter * tree.height as f64 + tree.height as f64;

    // Process TSPs in BFS order so a round propagates root-to-leaves.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| tree.depth[i]);

    let mut max_errors = Vec::with_capacity(rounds);
    let mut converged_after = None;
    for round in 0..rounds {
        // Clocks advance one exchange interval.
        for i in 0..n {
            let local = clocks[i].local_elapsed(HAC_EXCHANGE_INTERVAL as f64) + residue[i];
            let whole = local.floor();
            residue[i] = local - whole;
            hacs[i].advance(whole as u64);
        }
        // Each child observes its parent's HAC and adjusts.
        for &i in &order {
            let Some((parent, _)) = tree.parent[i] else {
                continue;
            };
            let model = edge_models[i].as_ref().expect("edge model for child");
            let transmitted = hacs[parent.index()].value();
            let actual_latency = model.sample(rng);
            let child_at_arrival = (hacs[i].value() + actual_latency) % HAC_PERIOD;
            let estimate = (transmitted + model.base_cycles) % HAC_PERIOD;
            let delta = signed_mod_difference(estimate as i64 - child_at_arrival as i64);
            hacs[i].adjust(delta, max_adjust_per_exchange);
        }
        // Global skew vs the root.
        let root_val = hacs[root.index()];
        let max_err = (0..n)
            .map(|i| hacs[i].signed_difference(&root_val).abs() as f64)
            .fold(0.0, f64::max);
        max_errors.push(max_err);
        if converged_after.is_none() && max_err <= neighborhood {
            converged_after = Some(round + 1);
        }
    }
    TreeAlignmentTrace {
        max_errors,
        converged_after,
        neighborhood,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsm_topology::Topology;

    #[test]
    fn single_node_network_aligns() {
        let topo = Topology::single_node();
        let mut rng = StdRng::seed_from_u64(1);
        let trace = simulate_tree_alignment(&topo, TspId(0), 100.0, 4, 300, &mut rng);
        let c = trace.converged_after.expect("8 TSPs converge");
        assert!(c < 200, "took {c} rounds");
        // skew stays bounded after convergence
        let tail = &trace.max_errors[c..];
        assert!(
            tail.iter().all(|&e| e <= trace.neighborhood * 1.5),
            "{tail:?}"
        );
    }

    #[test]
    fn multi_node_network_aligns_through_deeper_tree() {
        let topo = Topology::fully_connected_nodes(4).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trace = simulate_tree_alignment(&topo, TspId(0), 100.0, 4, 400, &mut rng);
        assert!(
            trace.converged_after.is_some(),
            "32 TSPs over ≤3-hop tree must converge"
        );
    }

    #[test]
    fn convergence_is_seed_deterministic() {
        let topo = Topology::single_node();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate_tree_alignment(&topo, TspId(0), 50.0, 4, 100, &mut rng).max_errors
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn zero_drift_network_converges_fast_and_tight() {
        let topo = Topology::single_node();
        let mut rng = StdRng::seed_from_u64(3);
        let trace = simulate_tree_alignment(&topo, TspId(0), 0.0, 8, 150, &mut rng);
        let c = trace.converged_after.expect("ideal clocks converge");
        // With no drift the only residual is link jitter.
        let tail = &trace.max_errors[c + 10..];
        assert!(tail.iter().all(|&e| e <= trace.neighborhood), "{tail:?}");
    }
}
