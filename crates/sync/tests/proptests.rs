//! Property-based tests for counters, clocks and deskew.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making the helpers and imports below look unused;
// the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsm_sync::clock::LocalClock;
use tsm_sync::deskew::RuntimeDeskew;
use tsm_sync::hac::{signed_mod_difference, AlignedCounter, HAC_PERIOD};

proptest! {
    /// Advancing is associative: one big step equals many small steps.
    #[test]
    fn advance_is_associative(start in 0u64..252, steps in prop::collection::vec(0u64..10_000, 1..20)) {
        let mut a = AlignedCounter::starting_at(start);
        let mut b = AlignedCounter::starting_at(start);
        let total: u64 = steps.iter().sum();
        for s in &steps {
            a.advance(*s);
        }
        b.advance(total);
        prop_assert_eq!(a.value(), b.value());
        prop_assert_eq!(a.epochs(), b.epochs());
    }

    /// Epoch counting is exact: epochs = floor((start + cycles) / period).
    #[test]
    fn epoch_count_exact(start in 0u64..252, cycles in 0u64..1_000_000) {
        let mut c = AlignedCounter::starting_at(start);
        let crossed = c.advance(cycles);
        prop_assert_eq!(crossed, (start + cycles) / HAC_PERIOD);
        prop_assert_eq!(c.value(), (start + cycles) % HAC_PERIOD);
    }

    /// signed_mod_difference always lands in (-P/2, P/2] and is congruent
    /// to its input mod P.
    #[test]
    fn signed_difference_properties(raw in -1_000_000i64..1_000_000) {
        let d = signed_mod_difference(raw);
        let p = HAC_PERIOD as i64;
        prop_assert!(d > -p / 2 && d <= p / 2);
        prop_assert_eq!((raw - d).rem_euclid(p), 0);
    }

    /// Rate-limited adjustment never moves more than the limit, and moves
    /// toward the target.
    #[test]
    fn adjust_is_bounded_and_directional(
        start in 0u64..252,
        delta in -300i64..300,
        max_rate in 1u64..50,
    ) {
        let mut c = AlignedCounter::starting_at(start);
        let applied = c.adjust(delta, max_rate);
        prop_assert!(applied.unsigned_abs() <= max_rate);
        prop_assert_eq!(applied.signum(), delta.signum());
        let expected = (start as i64 + applied).rem_euclid(HAC_PERIOD as i64) as u64;
        prop_assert_eq!(c.value(), expected);
    }

    /// Clock drift is linear: drift(2t) = 2·drift(t).
    #[test]
    fn drift_is_linear(ppm in -200.0f64..200.0, t in 1.0f64..1e9) {
        let c = LocalClock::with_ppm(ppm);
        let d1 = c.drift_after(t);
        let d2 = c.drift_after(2.0 * t);
        prop_assert!((d2 - 2.0 * d1).abs() < 1e-6 * d1.abs().max(1.0));
    }

    /// A deskew whose target covers the drift always produces a
    /// non-negative stall that exactly compensates.
    #[test]
    fn deskew_stall_compensates(target in 0u64..100_000, drift in -1000i64..1000) {
        let d = RuntimeDeskew::new(target);
        match d.stall_cycles(drift) {
            Some(stall) => {
                prop_assert_eq!(stall as i64, target as i64 + drift);
            }
            None => {
                prop_assert!(drift < 0 && drift.unsigned_abs() > target);
            }
        }
    }

    /// Program-level invariant: with RUNTIME_DESKEW between segments, the
    /// accumulated drift before each deskew never exceeds one segment's
    /// worth regardless of clock rate or segment length.
    #[test]
    fn deskew_bounds_drift(ppm in -150.0f64..150.0, segment in 10_000u64..2_000_000) {
        prop_assume!(ppm != 0.0);
        let per_segment = (ppm.abs() * 1e-6 * segment as f64).ceil() + 1.0;
        let d = RuntimeDeskew::new(per_segment as u64 + 10);
        let drifts = d.simulate_program(LocalClock::with_ppm(ppm), segment, 20);
        for drift in drifts {
            prop_assert!(drift <= per_segment, "{drift} > {per_segment}");
        }
    }

    /// Seeded clock draws are reproducible.
    #[test]
    fn random_clock_reproducible(seed: u64, max_ppm in 1.0f64..500.0) {
        let a = LocalClock::random(max_ppm, &mut StdRng::seed_from_u64(seed));
        let b = LocalClock::random(max_ppm, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
        prop_assert!(a.ppm.abs() <= max_ppm);
    }
}
